//! "Figure 11" (beyond the paper): snapshot persistence vs rebuild.
//!
//! A restartable serving system has two ways to get its filter back after
//! a restart: **load** a binary snapshot (table + adaptation state +
//! reverse-map state, one checksummed file) or **rebuild** from the
//! original keys — which replays every insert and, crucially, *loses all
//! accumulated adaptations* (the false positives fixed over the filter's
//! lifetime fire again). This harness quantifies the trade on every
//! `--filter` kind:
//!
//! 1. build a filter at 85% load and feed it adaptation traffic,
//! 2. time `snapshot` (serialize + atomic write), report the file size,
//! 3. time `load` (read + checksum + decode + structural re-validation;
//!    the sharded AQF decodes shards in parallel),
//! 4. time the rebuild-from-keys alternative, and report load's speedup.
//!
//! A second section times the composed system: `FilteredDb::snapshot` /
//! `FilteredDb::open` on the restart workload (filter + B-tree page
//! images + reverse map in one atomically committed manifest).
//!
//! Defaults: 2^18 slots, 9-bit remainders, 2^5 shards, 3 reps
//! (`--qbits`, `--rbits`, `--shard-bits`, `--reps`); filters
//! `aqf,sharded-aqf,qf` (`--filter`); system section at 2^14 slots
//! (`--db-qbits`).

use aqf_bench::*;
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use aqf_workloads::{uniform_keys, unique_temp_dir, RestartSchedule};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = unique_temp_dir(&format!("aqf-fig11-{tag}"));
    std::fs::create_dir_all(&d).expect("create bench tempdir");
    d
}

fn main() {
    let qbits = flag_u64("qbits", 18) as u32;
    let rbits = flag_u64("rbits", 9) as u32;
    let shard_bits = (flag_u64("shard-bits", 5) as u32).min(qbits.saturating_sub(1));
    let reps = (flag_u64("reps", 3) as usize).max(1);
    let db_qbits = flag_u64("db-qbits", 14) as u32;
    let kinds = filter_kinds(&["aqf", "sharded-aqf", "qf"]);

    let n = ((1u64 << qbits) as f64 * 0.85) as usize;
    let keys = uniform_keys(n, 21);
    let probes = uniform_keys(n.min(20_000), 22);
    let dir = temp_dir("filters");

    // ---- Section 1: filter-level snapshot / load / rebuild -------------
    let mut rows = Vec::new();
    for kind in &kinds {
        let spec = FilterSpec::new(kind.clone(), qbits)
            .with_rbits(rbits)
            .with_shard_bits(shard_bits)
            .with_seed(1);
        let mut f = spec.build().expect("spec validated by filter_kinds");
        for c in keys.chunks(16 * 1024) {
            f.insert_batch(c).expect("sized to fit");
        }
        // Adaptation traffic so snapshots carry non-trivial state.
        for &p in &probes {
            let _ = f.query_adapting(p | (1 << 63));
        }
        let path = dir.join(format!("{kind}.snap"));

        let mut save_s = f64::INFINITY;
        for _ in 0..reps {
            let (_, s) = timed(|| registry::save_snapshot(f.as_ref(), &path).expect("save"));
            save_s = save_s.min(s);
        }
        let bytes = std::fs::metadata(&path).expect("snapshot written").len();

        let mut load_s = f64::INFINITY;
        let mut loaded = None;
        for _ in 0..reps {
            let (g, s) = timed(|| registry::load_snapshot_file(&path).expect("load"));
            load_s = load_s.min(s);
            loaded = Some(g);
        }
        let g = loaded.expect("reps >= 1");
        assert_eq!(g.len(), f.len(), "{kind}: load must reproduce the filter");

        let mut rebuild_s = f64::INFINITY;
        for _ in 0..reps {
            let (_, s) = timed(|| {
                let mut r = spec.build().expect("spec validated");
                for c in keys.chunks(16 * 1024) {
                    r.insert_batch(c).expect("sized to fit");
                }
                r
            });
            rebuild_s = rebuild_s.min(s);
        }

        rows.push(vec![
            kind.clone(),
            format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", bytes as f64 / save_s / (1024.0 * 1024.0)),
            ops_per_sec(n as u64, load_s),
            ops_per_sec(n as u64, rebuild_s),
            format!("{:.1}x", rebuild_s / load_s),
        ]);
    }
    print_table(
        &format!("Fig 11a: snapshot vs rebuild, per filter (2^{qbits} slots, best of {reps})"),
        &[
            "Filter",
            "Snapshot MB",
            "Save MB/s",
            "Load keys/s",
            "Rebuild keys/s",
            "Load speedup",
        ],
        &rows,
    );

    // ---- Section 2: the composed FilteredDb on the restart workload ----
    let sched = RestartSchedule::generate(((1u64 << db_qbits) as f64 * 0.6) as usize, 0.2, 0.0, 7);
    let mut rows = Vec::new();
    for kind in &kinds {
        let spec = FilterSpec::new(kind.clone(), db_qbits)
            .with_rbits(rbits)
            .with_shard_bits(shard_bits.min(db_qbits.saturating_sub(1)))
            .with_seed(1);
        let dbdir = temp_dir(&format!("db-{kind}"));
        let mut db = FilteredDb::new(
            spec.build().expect("spec validated"),
            &dbdir,
            1024,
            IoPolicy::default(),
            RevMapMode::Merged,
        )
        .expect("create db");
        for &k in &sched.committed {
            db.insert(k, &k.to_le_bytes()).expect("io").expect("fits");
        }
        let (_, snap_s) = timed(|| db.snapshot().expect("snapshot"));
        // Post-snapshot tail, then the kill.
        for &k in &sched.lost {
            db.insert(k, &k.to_le_bytes()).expect("io").expect("fits");
        }
        drop(db);
        let (mut db, open_s) =
            timed(|| FilteredDb::open(&dbdir, 1024, IoPolicy::default()).expect("open"));
        // Recovery correctness, then replay the lost tail.
        assert!(db.query(sched.committed[0]).expect("io").is_some());
        let (_, replay_s) = timed(|| {
            for &k in &sched.lost {
                db.insert(k, &k.to_le_bytes()).expect("io").expect("fits");
            }
        });
        rows.push(vec![
            kind.clone(),
            format!("{:.1}", snap_s * 1e3),
            format!("{:.1}", open_s * 1e3),
            format!("{:.1}", replay_s * 1e3),
        ]);
        let _ = std::fs::remove_dir_all(&dbdir);
    }
    print_table(
        &format!(
            "Fig 11b: FilteredDb snapshot / recover / replay \
             (2^{db_qbits} slots, {} committed + {} lost keys)",
            sched.committed.len(),
            sched.lost.len()
        ),
        &["Filter", "Snapshot ms", "Recover ms", "Replay ms"],
        &rows,
    );

    let _ = std::fs::remove_dir_all(&dir);
}
