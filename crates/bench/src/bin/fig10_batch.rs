//! "Figure 10" (beyond the paper): batched vs per-key throughput.
//!
//! The paper's throughput figures (Figs. 3–5) drive every key through its
//! own hash → route → lock → probe trip. This harness measures what the
//! batch subsystem buys on the same workloads:
//!
//! 1. **Single-thread, any registry kind** — `DynFilter::insert_batch` /
//!    `contains_batch` (quotient-range-partitioned table walks for the
//!    AQF family, correct per-key fallback for everything else) against
//!    the per-key loop.
//! 2. **Multi-thread, sharded AQF** — `ShardedAqf::insert_batch` /
//!    `contains_batch` take each shard's lock once per batch instead of
//!    once per key; threads 1,2,4,..,`--max-threads`.
//!
//! Each cell reports the best of `--reps` runs (min over repetitions is
//! the standard noise floor for short timed sections). The batch win
//! comes from lock amortization plus cache-resident region walks, so it
//! needs tables larger than the last-level cache slice per shard —
//! measure at the default 2^20 slots or above, not at smoke scale.
//!
//! Defaults: 2^20 slots, 9-bit remainders, 2^5 shards, 16384-key
//! batches, threads up to 8, 3 reps (`--qbits`, `--rbits`,
//! `--shard-bits`, `--batch`, `--max-threads`, `--reps`); filters
//! `aqf,sharded-aqf,qf` (`--filter`).

use aqf_bench::*;
use aqf_workloads::uniform_keys;
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let qbits = flag_u64("qbits", 20) as u32;
    let rbits = flag_u64("rbits", 9) as u32;
    let shard_bits = (flag_u64("shard-bits", 5) as u32).min(qbits.saturating_sub(1));
    let batch = (flag_u64("batch", 16384) as usize).max(1);
    let max_threads = flag_u64("max-threads", 8) as usize;
    let reps = (flag_u64("reps", 3) as usize).max(1);
    let kinds = filter_kinds(&["aqf", "sharded-aqf", "qf"]);

    let n = ((1u64 << qbits) as f64 * 0.85) as usize;
    let keys = Arc::new(uniform_keys(n, 11));
    // A fresh uniform draw: almost all probes miss, like Fig. 3's
    // uniform-query protocol.
    let probes = Arc::new(uniform_keys(n, 12));

    // ---- Section 1: single-thread, per registry kind -------------------
    let mut rows = Vec::new();
    for kind in &kinds {
        let spec = FilterSpec::new(kind.clone(), qbits)
            .with_rbits(rbits)
            .with_shard_bits(shard_bits)
            .with_seed(1);

        let mut ins_seq = f64::INFINITY;
        for _ in 0..reps {
            let mut f = spec.build().expect("spec validated by filter_kinds");
            let (_, s) = timed(|| {
                for &k in keys.iter() {
                    f.insert(k).expect("sized to fit");
                }
            });
            ins_seq = ins_seq.min(s);
        }
        let mut ins_bat = f64::INFINITY;
        let mut built = None;
        for _ in 0..reps {
            let mut f = spec.build().expect("spec validated by filter_kinds");
            let (_, s) = timed(|| {
                for c in keys.chunks(batch) {
                    f.insert_batch(c).expect("sized to fit");
                }
            });
            ins_bat = ins_bat.min(s);
            built = Some(f);
        }
        let f = built.expect("reps >= 1");

        let mut qry_seq = f64::INFINITY;
        let mut qry_bat = f64::INFINITY;
        for _ in 0..reps {
            let (_, s) = timed(|| {
                let mut hits = 0u64;
                for &k in probes.iter() {
                    hits += f.contains(k) as u64;
                }
                black_box(hits)
            });
            qry_seq = qry_seq.min(s);
            let (_, s) = timed(|| {
                let mut hits = 0u64;
                for c in probes.chunks(batch) {
                    hits += f.contains_batch(c).iter().filter(|&&b| b).count() as u64;
                }
                black_box(hits)
            });
            qry_bat = qry_bat.min(s);
        }

        rows.push(vec![
            kind.clone(),
            ops_per_sec(n as u64, ins_seq),
            ops_per_sec(n as u64, ins_bat),
            ops_per_sec(n as u64, qry_seq),
            ops_per_sec(n as u64, qry_bat),
        ]);
    }
    print_table(
        &format!(
            "Fig 10a: per-key vs batched, single thread \
             (2^{qbits} slots, batch={batch}, best of {reps})"
        ),
        &[
            "Filter",
            "Insert/s per-key",
            "Insert/s batched",
            "Query/s per-key",
            "Query/s batched",
        ],
        &rows,
    );

    // ---- Section 2: sharded AQF across threads -------------------------
    let cfg = aqf::AqfConfig::new(qbits, rbits).with_seed(1);
    let mut rows = Vec::new();
    let mut threads = 1usize;
    while threads <= max_threads {
        let mut ins_seq = f64::INFINITY;
        for _ in 0..reps {
            let f = Arc::new(aqf::ShardedAqf::new(cfg, shard_bits).unwrap());
            let (_, s) = timed(|| {
                run_threads(threads, &keys, |ks| {
                    for &k in ks {
                        let _ = f.insert(k);
                    }
                })
            });
            ins_seq = ins_seq.min(s);
        }

        let mut ins_bat = f64::INFINITY;
        let mut built = None;
        for _ in 0..reps {
            let f = Arc::new(aqf::ShardedAqf::new(cfg, shard_bits).unwrap());
            let (_, s) = timed(|| {
                run_threads(threads, &keys, |ks| {
                    for c in ks.chunks(batch) {
                        insert_chunk_fair(&f, c);
                    }
                })
            });
            ins_bat = ins_bat.min(s);
            built = Some(f);
        }
        let f = built.expect("reps >= 1");

        let mut qry_seq = f64::INFINITY;
        let mut qry_bat = f64::INFINITY;
        for _ in 0..reps {
            let (_, s) = timed(|| {
                run_threads(threads, &probes, |ks| {
                    let mut hits = 0u64;
                    for &k in ks {
                        hits += f.contains(k) as u64;
                    }
                    black_box(hits);
                })
            });
            qry_seq = qry_seq.min(s);
            let (_, s) = timed(|| {
                run_threads(threads, &probes, |ks| {
                    let mut hits = 0u64;
                    for c in ks.chunks(batch) {
                        hits += f.contains_batch(c).iter().filter(|&&b| b).count() as u64;
                    }
                    black_box(hits);
                })
            });
            qry_bat = qry_bat.min(s);
        }

        rows.push(vec![
            threads.to_string(),
            ops_per_sec(n as u64, ins_seq),
            ops_per_sec(n as u64, ins_bat),
            ops_per_sec(n as u64, qry_seq),
            ops_per_sec(n as u64, qry_bat),
        ]);
        threads = if threads == 1 { 2 } else { threads + 2 };
    }
    print_table(
        &format!(
            "Fig 10b: sharded AQF per-key vs batched (2^{qbits} slots, 2^{shard_bits} shards, \
             batch={batch}, best of {reps})"
        ),
        &[
            "Threads",
            "Insert/s per-key",
            "Insert/s batched",
            "Query/s per-key",
            "Query/s batched",
        ],
        &rows,
    );
}

/// Batch-insert one chunk, degrading fairly on overflow: if the batch
/// aborts (a shard filled), attempt each key that had not landed yet
/// individually — exactly the work the per-key side does — so the
/// comparison never measures skipped work.
fn insert_chunk_fair(f: &aqf::ShardedAqf, chunk: &[u64]) {
    let mut landed = vec![false; chunk.len()];
    if f.insert_batch_with(chunk, |i, _, _| landed[i] = true)
        .is_ok()
    {
        return;
    }
    for (j, &k) in chunk.iter().enumerate() {
        if !landed[j] {
            let _ = f.insert(k);
        }
    }
}
