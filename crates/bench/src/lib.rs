//! Shared plumbing for the per-table/figure benchmark binaries.
//!
//! Every binary accepts `--name=value` flags (see each binary's `--help`)
//! and defaults to a laptop-scale configuration; pass larger `--qbits` /
//! `--queries` to approach the paper's scale. Results print as markdown
//! tables (and CSV with `--csv`) so EXPERIMENTS.md can quote them.
//!
//! Filters are selected uniformly across binaries with
//! `--filter=<kind>[,<kind>...]` (or `--filter=all`), resolved through
//! [`aqf_filters::registry`]; each binary documents its default kind set.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use aqf::{AdaptiveQf, AqfConfig, QueryResult, ShadowMap};
pub use aqf_filters::registry::{self, FilterSpec};
pub use aqf_filters::{
    AdaptiveCuckooFilter, AmqFilter, CuckooFilter, DynFilter, QuotientFilter, TelescopingFilter,
};

/// Parse `--name=value` from argv.
pub fn flag_u64(name: &str, default: u64) -> u64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Parse `--name=value` as f64.
pub fn flag_f64(name: &str, default: f64) -> f64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Parse `--name=value` as a string.
pub fn flag_str(name: &str, default: &str) -> String {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        .unwrap_or_else(|| default.to_string())
}

/// Presence of a bare `--name` flag.
pub fn flag_bool(name: &str) -> bool {
    let want = format!("--{name}");
    std::env::args().any(|a| a == want)
}

/// The filter kinds this run targets: `--filter=<kind>[,<kind>...]`
/// against the registry, `--filter=all` for every registered kind,
/// default `default_kinds`. Unknown kinds abort with the valid set.
pub fn filter_kinds(default_kinds: &[&str]) -> Vec<String> {
    let raw = flag_str("filter", &default_kinds.join(","));
    let kinds: Vec<String> = if raw == "all" {
        registry::kinds().iter().map(|s| s.to_string()).collect()
    } else {
        raw.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    };
    for k in &kinds {
        if registry::describe(k).is_none() {
            eprintln!(
                "unknown --filter kind {k:?}; valid kinds: {}",
                registry::kinds().join(", ")
            );
            std::process::exit(2);
        }
    }
    if kinds.is_empty() {
        eprintln!("--filter must name at least one kind");
        std::process::exit(2);
    }
    kinds
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Run `f` over contiguous partitions of `keys` across `n` scoped
/// threads; returns when every partition has been processed.
pub fn run_threads(n: usize, keys: &[u64], f: impl Fn(&[u64]) + Sync) {
    std::thread::scope(|scope| {
        let chunk = keys.len().div_ceil(n).max(1);
        for t in 0..n {
            let f = &f;
            let start = (t * chunk).min(keys.len());
            let end = ((t + 1) * chunk).min(keys.len());
            let part = &keys[start..end];
            scope.spawn(move || f(part));
        }
    });
}

/// Format an ops/second figure compactly.
pub fn ops_per_sec(n: u64, secs: f64) -> String {
    let v = n as f64 / secs;
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Print a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("| {} |", r.join(" | "));
    }
}

/// Fill an AQF + shadow map to `n` keys from `keys`.
pub fn fill_aqf(f: &mut AdaptiveQf, map: &mut ShadowMap, keys: &[u64]) {
    for &k in keys {
        f.insert(k).expect("bench filter sized to fit");
        map.record(k);
    }
    map.settle(|k| f.fingerprint(k).minirun_id());
}

/// AQF query with full adaptation through the shadow map. Returns true on
/// a filter positive.
pub fn aqf_query_adapting(f: &mut AdaptiveQf, map: &ShadowMap, key: u64) -> bool {
    match f.query(key) {
        QueryResult::Negative => false,
        QueryResult::Positive(hit) => {
            if let Some(stored) = map.get(hit.minirun_id, hit.rank) {
                if stored != key {
                    let _ = f.adapt(&hit, stored, key);
                }
            }
            true
        }
    }
}
