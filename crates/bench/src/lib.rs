//! Shared plumbing for the per-table/figure benchmark binaries.
//!
//! Every binary accepts `--name=value` flags (see each binary's `--help`)
//! and defaults to a laptop-scale configuration; pass larger `--qbits` /
//! `--queries` to approach the paper's scale. Results print as markdown
//! tables (and CSV with `--csv`) so EXPERIMENTS.md can quote them.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use aqf::{AdaptiveQf, AqfConfig, QueryResult};
pub use aqf_filters::{
    AdaptiveCuckooFilter, CuckooFilter, Filter, QuotientFilter, TelescopingFilter,
};

/// Parse `--name=value` from argv.
pub fn flag_u64(name: &str, default: u64) -> u64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Parse `--name=value` as f64.
pub fn flag_f64(name: &str, default: f64) -> f64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Presence of a bare `--name` flag.
pub fn flag_bool(name: &str) -> bool {
    let want = format!("--{name}");
    std::env::args().any(|a| a == want)
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Format an ops/second figure compactly.
pub fn ops_per_sec(n: u64, secs: f64) -> String {
    let v = n as f64 / secs;
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Print a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for r in rows {
        println!("| {} |", r.join(" | "));
    }
}

/// The five evaluated filters at a common slot budget of `2^qbits` slots
/// and ≈2^-9 false-positive rate (paper §6.2: QF-family 9-bit remainders,
/// CF-family 12-bit tags in 4-slot buckets).
pub enum AnyFilter {
    /// AdaptiveQF with its shadow reverse map (simulated, like §6.3).
    Aqf(AdaptiveQf, ShadowMap),
    /// Telescoping quotient filter.
    Tqf(TelescopingFilter),
    /// Adaptive cuckoo filter.
    Acf(AdaptiveCuckooFilter),
    /// Plain quotient filter.
    Qf(QuotientFilter),
    /// Cuckoo filter.
    Cf(CuckooFilter),
}

impl AnyFilter {
    /// Instantiate by name ("aqf", "tqf", "acf", "qf", "cf").
    pub fn build(kind: &str, qbits: u32, seed: u64) -> AnyFilter {
        match kind {
            "aqf" => AnyFilter::Aqf(
                AdaptiveQf::new(AqfConfig::new(qbits, 9).with_seed(seed)).unwrap(),
                ShadowMap::default(),
            ),
            "tqf" => AnyFilter::Tqf(TelescopingFilter::new(qbits, 9, seed).unwrap()),
            "acf" => AnyFilter::Acf(AdaptiveCuckooFilter::new(qbits - 2, 12, seed).unwrap()),
            "qf" => AnyFilter::Qf(QuotientFilter::new(qbits, 9, seed).unwrap()),
            "cf" => AnyFilter::Cf(CuckooFilter::new(qbits - 2, 12, seed).unwrap()),
            other => panic!("unknown filter kind {other}"),
        }
    }

    /// All five kinds, adaptive first (paper figure order).
    pub fn kinds() -> &'static [&'static str] {
        &["aqf", "tqf", "acf", "qf", "cf"]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyFilter::Aqf(..) => "AQF",
            AnyFilter::Tqf(_) => "TQF",
            AnyFilter::Acf(_) => "ACF",
            AnyFilter::Qf(_) => "QF",
            AnyFilter::Cf(_) => "CF",
        }
    }

    /// True if this filter adapts to false positives.
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            AnyFilter::Aqf(..) | AnyFilter::Tqf(_) | AnyFilter::Acf(_)
        )
    }

    /// Insert a key. Returns false when the filter reports Full.
    pub fn insert(&mut self, key: u64) -> bool {
        match self {
            AnyFilter::Aqf(f, map) => match f.insert(key) {
                Ok(out) => {
                    map.record(&out, key);
                    true
                }
                Err(_) => false,
            },
            AnyFilter::Tqf(f) => Filter::insert(f, key).is_ok(),
            AnyFilter::Acf(f) => Filter::insert(f, key).is_ok(),
            AnyFilter::Qf(f) => Filter::insert(f, key).is_ok(),
            AnyFilter::Cf(f) => Filter::insert(f, key).is_ok(),
        }
    }

    /// Membership query without adaptation.
    pub fn contains(&self, key: u64) -> bool {
        match self {
            AnyFilter::Aqf(f, _) => f.contains(key),
            AnyFilter::Tqf(f) => Filter::contains(f, key),
            AnyFilter::Acf(f) => Filter::contains(f, key),
            AnyFilter::Qf(f) => Filter::contains(f, key),
            AnyFilter::Cf(f) => Filter::contains(f, key),
        }
    }

    /// Query with adaptation on false positives, resolving stored keys
    /// through the shadow reverse map (the paper's §6.3 microbenchmark
    /// setting). Returns true if the filter answered positive.
    pub fn query_adapting(&mut self, key: u64) -> bool {
        match self {
            AnyFilter::Aqf(f, map) => match f.query(key) {
                QueryResult::Negative => false,
                QueryResult::Positive(hit) => {
                    map.settle();
                    if let Some(stored) = map.get(hit.minirun_id, hit.rank) {
                        if stored != key {
                            let _ = f.adapt(&hit, stored, key);
                        }
                    }
                    true
                }
            },
            AnyFilter::Tqf(f) => match f.query_slot(key) {
                None => false,
                Some(hit) => {
                    if f.stored_key(&hit) != key {
                        f.adapt(&hit);
                    }
                    true
                }
            },
            AnyFilter::Acf(f) => match f.query_slot(key) {
                None => false,
                Some(hit) => {
                    if f.stored_key(&hit) != key {
                        f.adapt(&hit);
                    }
                    true
                }
            },
            AnyFilter::Qf(f) => Filter::contains(f, key),
            AnyFilter::Cf(f) => Filter::contains(f, key),
        }
    }

    /// Filter table bytes.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            AnyFilter::Aqf(f, _) => f.size_in_bytes(),
            AnyFilter::Tqf(f) => Filter::size_in_bytes(f),
            AnyFilter::Acf(f) => Filter::size_in_bytes(f),
            AnyFilter::Qf(f) => Filter::size_in_bytes(f),
            AnyFilter::Cf(f) => Filter::size_in_bytes(f),
        }
    }
}

/// An auxiliary exact reverse map for microbenchmarks: minirun id -> keys
/// by rank, mirroring AQF insert outcomes (cheap, in-memory — the paper
/// does the same for filter-only benches: "we pick valid arbitrary keys
/// ... to simulate having the reverse map present").
///
/// Inserts append to a flat log (a couple of ns, so timed insert loops
/// aren't polluted by map maintenance, matching the paper's protocol);
/// the first lookup folds the log into the hash map.
#[derive(Default)]
pub struct ShadowMap {
    log: Vec<(u64, u32, u64)>,
    map: std::collections::HashMap<u64, Vec<u64>>,
}

impl ShadowMap {
    /// Record an insert outcome (cheap append).
    #[inline]
    pub fn record(&mut self, out: &aqf::InsertOutcome, key: u64) {
        self.log.push((out.minirun_id, out.rank, key));
    }

    /// Fold pending log entries into the lookup structure.
    pub fn settle(&mut self) {
        for (id, rank, key) in self.log.drain(..) {
            let list = self.map.entry(id).or_default();
            list.insert((rank as usize).min(list.len()), key);
        }
    }

    /// Key stored at (id, rank). Call [`Self::settle`] after inserts.
    pub fn get(&self, minirun_id: u64, rank: u32) -> Option<u64> {
        debug_assert!(self.log.is_empty(), "call settle() after inserts");
        self.map.get(&minirun_id)?.get(rank as usize).copied()
    }
}

/// Fill an AQF + shadow map to `n` keys from `keys`.
pub fn fill_aqf(f: &mut AdaptiveQf, map: &mut ShadowMap, keys: &[u64]) {
    for &k in keys {
        let out = f.insert(k).expect("bench filter sized to fit");
        map.record(&out, k);
    }
    map.settle();
}

/// AQF query with full adaptation through the shadow map. Returns true on
/// a filter positive.
pub fn aqf_query_adapting(f: &mut AdaptiveQf, map: &ShadowMap, key: u64) -> bool {
    match f.query(key) {
        QueryResult::Negative => false,
        QueryResult::Positive(hit) => {
            if let Some(stored) = map.get(hit.minirun_id, hit.rank) {
                if stored != key {
                    let _ = f.adapt(&hit, stored, key);
                }
            }
            true
        }
    }
}
