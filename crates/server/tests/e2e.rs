//! End-to-end system tests: a loopback server under concurrent client
//! traffic, for every registry filter kind; graceful-shutdown snapshots;
//! and proptest-driven hard-kill crash points with restart recovery.

use aqf_filters::registry::{self, FilterSpec};
use aqf_server::proto::ErrorCode;
use aqf_server::{Client, ProtoError, Server, ServerConfig};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode, SNAPSHOT_FILE};
use aqf_workloads::RestartSchedule;
use proptest::prelude::*;
use std::path::Path;

fn fresh_db(kind: &str, qbits: u32, dir: &Path) -> FilteredDb {
    FilteredDb::new(
        FilterSpec::new(kind, qbits).with_seed(5).build().unwrap(),
        dir,
        128,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap()
}

fn start(db: FilteredDb, cfg: ServerConfig) -> Server {
    Server::start(db, "127.0.0.1:0", cfg).unwrap()
}

fn value_of(k: u64) -> Vec<u8> {
    (k ^ 0xA5A5_A5A5).to_le_bytes().to_vec()
}

/// Mixed insert/query/adapt workload from N concurrent client threads,
/// for every registry kind, with element-wise verification throughout.
#[test]
fn loopback_mixed_workload_every_kind() {
    for kind in registry::kinds() {
        let dir = aqf_workloads::unique_temp_dir(&format!("aqf-e2e-{kind}"));
        let srv = start(fresh_db(kind, 12, &dir), ServerConfig::default());
        let addr = srv.local_addr();

        const CLIENTS: u64 = 3;
        const PER: u64 = 600;
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                s.spawn(move || {
                    let mut cl = Client::connect(addr).unwrap();
                    // Disjoint member range per client.
                    let base = 1 + c * PER * 2;
                    let members: Vec<u64> = (0..PER).map(|i| base + i * 2).collect();
                    // Half per-op (exercises burst coalescing), half batched.
                    for &k in &members[..members.len() / 2] {
                        cl.insert(k, &value_of(k)).unwrap();
                    }
                    let rest: Vec<(u64, Vec<u8>)> = members[members.len() / 2..]
                        .iter()
                        .map(|&k| (k, value_of(k)))
                        .collect();
                    cl.insert_batch(&rest).unwrap();

                    // Every member answers with its exact value, per-op
                    // and batched.
                    for &k in &members {
                        assert_eq!(
                            cl.query(k).unwrap().as_deref(),
                            Some(&value_of(k)[..]),
                            "{kind}: member {k}"
                        );
                    }
                    let got = cl.query_batch(&members).unwrap();
                    for (i, &k) in members.iter().enumerate() {
                        assert_eq!(
                            got[i].as_deref(),
                            Some(&value_of(k)[..]),
                            "{kind}: batched member {k}"
                        );
                    }

                    // Absent keys answer NotFound (the server's verify
                    // path refutes false positives); report one back as
                    // adapt traffic.
                    let absent_base = (1 << 45) + c * PER * 16;
                    for i in 0..PER {
                        let k = absent_base + i * 13;
                        assert_eq!(cl.query(k).unwrap(), None, "{kind}: absent {k}");
                        if i % 64 == 0 {
                            let _ = cl.adapt_report(k).unwrap();
                        }
                    }
                });
            }
        });

        let mut cl = Client::connect(addr).unwrap();
        let stats = cl.stats().unwrap();
        assert_eq!(stats.inserts, CLIENTS * PER, "{kind}: insert count");
        assert!(stats.queries >= CLIENTS * PER * 3, "{kind}: query count");
        assert!(stats.connections >= CLIENTS, "{kind}: connections");
        assert_eq!(stats.filter_kind, kind.to_string(), "{kind}: kind in stats");

        // On-demand snapshot, then graceful shutdown (second snapshot).
        cl.snapshot().unwrap();
        assert!(dir.join(SNAPSHOT_FILE).is_file(), "{kind}: snapshot file");
        cl.shutdown().unwrap();
        drop(srv.wait().unwrap());

        // Recover and spot-check through a fresh server.
        let db = FilteredDb::open(&dir, 128, IoPolicy::default()).unwrap();
        let srv = start(db, ServerConfig::default());
        let mut cl = Client::connect(srv.local_addr()).unwrap();
        for c in 0..CLIENTS {
            let base = 1 + c * PER * 2;
            for i in (0..PER).step_by(29) {
                let k = base + i * 2;
                assert_eq!(
                    cl.query(k).unwrap().as_deref(),
                    Some(&value_of(k)[..]),
                    "{kind}: member {k} lost across restart"
                );
            }
        }
        cl.shutdown().unwrap();
        srv.wait().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Deletes over the wire: supported kinds remove records; unsupported
/// kinds answer a typed remote error and the server stays up.
#[test]
fn delete_over_the_wire() {
    for (kind, supported) in [("sharded-aqf", true), ("cf", true), ("qf", false)] {
        let dir = aqf_workloads::unique_temp_dir(&format!("aqf-e2e-del-{kind}"));
        let srv = start(fresh_db(kind, 12, &dir), ServerConfig::default());
        let mut cl = Client::connect(srv.local_addr()).unwrap();
        let keys: Vec<u64> = (0..500u64).map(|i| i * 5 + 2).collect();
        let items: Vec<(u64, Vec<u8>)> = keys.iter().map(|&k| (k, value_of(k))).collect();
        cl.insert_batch(&items).unwrap();
        if supported {
            for &k in keys.iter().step_by(2) {
                assert!(cl.delete(k).unwrap(), "{kind}: delete of member {k}");
            }
            for (i, &k) in keys.iter().enumerate() {
                let got = cl.query(k).unwrap();
                if i % 2 == 1 {
                    assert_eq!(
                        got.as_deref(),
                        Some(&value_of(k)[..]),
                        "{kind}: survivor {k}"
                    );
                }
            }
        } else {
            match cl.delete(keys[0]) {
                Err(ProtoError::Remote { code, .. }) => {
                    assert_eq!(code, ErrorCode::Unsupported, "{kind}: error code")
                }
                other => panic!("{kind}: expected remote error, got {other:?}"),
            }
            // Same connection still serves after the typed error.
            assert_eq!(
                cl.query(keys[0]).unwrap().as_deref(),
                Some(&value_of(keys[0])[..])
            );
        }
        cl.shutdown().unwrap();
        srv.wait().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A live server over an auto-growing, file-backed database: wire
/// inserts push far past the initial filter capacity without ever
/// failing, and the v2 STATS fields (capacity / load factor / grow
/// count) report the growth over the wire.
#[test]
fn auto_grow_reports_through_wire_stats() {
    let dir = aqf_workloads::unique_temp_dir("aqf-e2e-grow");
    let mut db = fresh_db("aqf", 8, &dir);
    db.set_auto_grow(Some(0.9)).unwrap();
    db.enable_file_backing().unwrap();
    let srv = start(db, ServerConfig::default());
    let mut cl = Client::connect(srv.local_addr()).unwrap();

    let n = 4 * 256u64; // 4x the 2^8 initial slot budget
    let items: Vec<(u64, Vec<u8>)> = (0..n).map(|k| (k * 9 + 1, value_of(k))).collect();
    cl.insert_batch(&items).unwrap();

    let stats = cl.stats().unwrap();
    assert_eq!(stats.inserts, n, "every insert absorbed without Full");
    assert!(
        stats.grows >= 2,
        "expected >=2 doublings, saw {}",
        stats.grows
    );
    assert!(stats.capacity >= n, "capacity {} < {n}", stats.capacity);
    let lf = stats.load_factor();
    assert!(lf > 0.0 && lf <= 1.0, "load factor {lf} out of range");
    for (k, v) in items.iter().step_by(37) {
        assert_eq!(cl.query(*k).unwrap().as_deref(), Some(&v[..]));
    }
    cl.shutdown().unwrap();
    srv.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The full SIGTERM-shaped lifecycle against a hard kill: commit a
/// prefix, snapshot, keep writing, kill without the final snapshot,
/// restart, verify committed-present / lost-absent element-wise, replay
/// the tail, and verify the rebuilt world.
#[test]
fn restart_recovers_snapshot_and_replays_tail() {
    let dir = aqf_workloads::unique_temp_dir("aqf-e2e-restart");
    let sched = RestartSchedule::generate(1200, 0.3, 0.2, 21);

    // Phase 1: serve, commit, snapshot, then doomed writes; hard kill.
    let srv = start(
        fresh_db("sharded-aqf", 13, &dir),
        ServerConfig {
            snapshot_on_shutdown: false, // the "kill -9"
            ..ServerConfig::default()
        },
    );
    let mut cl = Client::connect(srv.local_addr()).unwrap();
    let batch =
        |ks: &[u64]| -> Vec<(u64, Vec<u8>)> { ks.iter().map(|&k| (k, value_of(k))).collect() };
    cl.insert_batch(&batch(&sched.committed)).unwrap();
    cl.snapshot().unwrap();
    cl.insert_batch(&batch(&sched.lost)).unwrap();
    for &p in &sched.probes[..200] {
        assert_eq!(cl.query(p).unwrap(), None, "probe {p} pre-kill");
    }
    // Doomed writes visible before the kill.
    assert_eq!(
        cl.query(sched.lost[0]).unwrap().as_deref(),
        Some(&value_of(sched.lost[0])[..])
    );
    cl.shutdown().unwrap();
    drop(srv.wait().unwrap()); // no snapshot taken: post-snapshot state dies

    // Phase 2: restart from the snapshot.
    let db = FilteredDb::open(&dir, 128, IoPolicy::default()).unwrap();
    let srv = start(db, ServerConfig::default());
    let mut cl = Client::connect(srv.local_addr()).unwrap();
    for &k in &sched.committed {
        assert_eq!(
            cl.query(k).unwrap().as_deref(),
            Some(&value_of(k)[..]),
            "committed key {k} lost in the crash"
        );
    }
    let mut ghosts = 0usize;
    for &k in &sched.lost {
        ghosts += cl.query(k).unwrap().is_some() as usize;
    }
    assert_eq!(ghosts, 0, "{ghosts} doomed keys survived the crash");

    // Phase 3: replay the tail, add the post phase, verify the world.
    cl.insert_batch(&batch(&sched.lost)).unwrap();
    cl.insert_batch(&batch(&sched.post)).unwrap();
    for ks in [&sched.committed, &sched.lost, &sched.post] {
        for &k in ks.iter() {
            assert_eq!(
                cl.query(k).unwrap().as_deref(),
                Some(&value_of(k)[..]),
                "key {k} wrong after replay"
            );
        }
    }
    for &p in &sched.probes[..200] {
        assert_eq!(cl.query(p).unwrap(), None, "probe {p} post-replay");
    }
    let stats = cl.stats().unwrap();
    assert_eq!(stats.filter_len as usize, sched.final_count());
    cl.shutdown().unwrap();
    srv.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Proptest case count: default, or `AQF_PROPTEST_CASES` (deep profile).
fn cases(default: u32) -> u32 {
    std::env::var("AQF_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(50)))]

    /// Randomized crash points: random filter kind, phase split, kill
    /// position (including mid-snapshot kills that leave a stale temp
    /// file), restart every time with zero corruption — every committed
    /// key answers its exact value, every doomed key is gone.
    #[test]
    fn crash_points_recover_with_zero_corruption(
        kind_idx in 0usize..3,
        n in 120usize..320,
        lost_pct in 5u32..45,
        seed in any::<u64>(),
        torn in 0u8..3,
    ) {
        let kind = ["sharded-aqf", "aqf", "qf"][kind_idx];
        let dir = aqf_workloads::unique_temp_dir("aqf-e2e-crash");
        let sched = RestartSchedule::generate(n, lost_pct as f64 / 100.0, 0.1, seed);

        let srv = start(
            fresh_db(kind, 12, &dir),
            ServerConfig { snapshot_on_shutdown: false, ..ServerConfig::default() },
        );
        let mut cl = Client::connect(srv.local_addr()).unwrap();
        let items: Vec<(u64, Vec<u8>)> =
            sched.committed.iter().map(|&k| (k, value_of(k))).collect();
        cl.insert_batch(&items).unwrap();
        cl.snapshot().unwrap();
        if !sched.lost.is_empty() {
            let doomed: Vec<(u64, Vec<u8>)> =
                sched.lost.iter().map(|&k| (k, value_of(k))).collect();
            cl.insert_batch(&doomed).unwrap();
        }
        cl.shutdown().unwrap();
        drop(srv.wait().unwrap()); // hard kill: no final snapshot

        // A mid-snapshot kill leaves a stale temp next to the manifest:
        // torn garbage (1) or a full-length impostor (2). Recovery must
        // ignore and remove it.
        let manifest = dir.join(SNAPSHOT_FILE);
        let tmp = aqf_bits::snapshot::stale_temp_path(&manifest);
        match torn {
            1 => std::fs::write(&tmp, b"torn mid-write").unwrap(),
            2 => {
                let full = std::fs::read(&manifest).unwrap();
                let mut garbage = full.clone();
                for b in garbage.iter_mut() {
                    *b ^= 0x5A;
                }
                std::fs::write(&tmp, &garbage).unwrap();
            }
            _ => {}
        }

        let db = FilteredDb::open(&dir, 64, IoPolicy::default())
            .expect("recovery must succeed at every crash point");
        prop_assert!(!tmp.exists(), "stale temp must be cleaned up");
        let srv = start(db, ServerConfig { snapshot_on_shutdown: false, ..ServerConfig::default() });
        let mut cl = Client::connect(srv.local_addr()).unwrap();
        for &k in &sched.committed {
            let got = cl.query(k).unwrap();
            prop_assert_eq!(
                got.as_deref(),
                Some(&value_of(k)[..]),
                "{}: committed key {} corrupted", kind, k
            );
        }
        for &k in &sched.lost {
            prop_assert!(
                cl.query(k).unwrap().is_none(),
                "{}: doomed key {} survived", kind, k
            );
        }
        cl.shutdown().unwrap();
        srv.wait().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
