//! Concurrency proofs for the server's read/write-split lock mode,
//! driven entirely over the wire:
//!
//! - many concurrent reader connections against one writer connection,
//!   with every answer checked element-wise against the sequential
//!   ground truth (a response is only ever `NotFound` or the exact
//!   inserted value, and inserts acknowledged before a read must be
//!   visible to it),
//! - a writer frozen *inside* a torn filter mutation (via the `aqf`
//!   test hooks), proving STATS completes without serializing behind
//!   the write side and that no torn answer ever escapes the server,
//! - the same mixed e2e workload under `--mux` (poll-style multiplexer)
//!   and `--global-lock`, which must be behaviorally identical to the
//!   default mode.
//!
//! The torn-writer test installs a process-wide hook, so every test in
//! this binary serializes on a file-local lock.

use aqf::testhooks::{self, TornPoint};
use aqf_filters::registry::FilterSpec;
use aqf_server::{Client, LockMode, Server, ServerConfig};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// Serializes the tests in this binary: the torn-writer probe installs
/// a process-wide test hook that must not observe another test's
/// writer threads.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn fresh_db(qbits: u32, dir: &Path) -> FilteredDb {
    FilteredDb::new(
        FilterSpec::new("sharded-aqf", qbits)
            .with_seed(5)
            .build()
            .unwrap(),
        dir,
        128,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap()
}

fn value_of(k: u64) -> Vec<u8> {
    (k ^ 0xC3C3_C3C3).to_le_bytes().to_vec()
}

/// Writer key `i` (odd keys; probes use even keys so they never become
/// members).
fn wkey(i: u64) -> u64 {
    1 + i * 2
}

/// Many readers race one writer; every response is checked against the
/// sequential ground truth. The writer acknowledges insert `i` before
/// publishing watermark `i+1`, so any read that observes watermark `w`
/// must see every key below `w` — that is exactly the element-wise
/// equality a sequential replay would produce, checked while the race
/// is live instead of after it.
#[test]
fn many_readers_one_writer_match_sequential_ground_truth() {
    let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    const N: u64 = 2500;
    const READERS: u64 = 3;
    let dir = aqf_workloads::unique_temp_dir("aqf-cw-readers");
    let srv = Server::start(fresh_db(13, &dir), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr();

    let watermark = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let (watermark, done) = (Arc::clone(&watermark), Arc::clone(&done));
            s.spawn(move || {
                let mut cl = Client::connect(addr).unwrap();
                for i in 0..N {
                    cl.insert(wkey(i), &value_of(wkey(i))).unwrap();
                    watermark.store(i + 1, SeqCst);
                }
                done.store(true, SeqCst);
            });
        }
        for r in 0..READERS {
            let (watermark, done) = (Arc::clone(&watermark), Arc::clone(&done));
            s.spawn(move || {
                use rand::RngExt;
                let mut rng = aqf_workloads::rng(0xBEEF ^ r);
                let mut cl = Client::connect(addr).unwrap();
                let mut checked = 0u64;
                while !done.load(SeqCst) {
                    let i = rng.random_range(0..N);
                    let w = watermark.load(SeqCst);
                    let got = cl.query(wkey(i)).unwrap();
                    match got {
                        Some(v) => assert_eq!(
                            v,
                            value_of(wkey(i)),
                            "reader {r}: wrong value for key {}",
                            wkey(i)
                        ),
                        None => assert!(
                            i >= w,
                            "reader {r}: key {} acknowledged before watermark {w} \
                             but invisible",
                            wkey(i)
                        ),
                    }
                    // Never-inserted keys must never materialize.
                    let probe = (1 << 40) + rng.random_range(0..N) * 2;
                    assert_eq!(
                        cl.query(probe).unwrap(),
                        None,
                        "reader {r}: phantom value for absent key {probe}"
                    );
                    checked += 1;
                }
                assert!(checked > 0, "reader {r} never overlapped the writer");
            });
        }
    });

    // Post-race: the full sequential replay, element-wise.
    let mut cl = Client::connect(addr).unwrap();
    let keys: Vec<u64> = (0..N).map(wkey).collect();
    let got = cl.query_batch(&keys).unwrap();
    for (i, g) in got.iter().enumerate() {
        assert_eq!(
            g.as_deref(),
            Some(&value_of(wkey(i as u64))[..]),
            "key {} diverges from sequential ground truth",
            wkey(i as u64)
        );
    }
    let stats = cl.stats().unwrap();
    assert_eq!(stats.inserts, N);
    cl.shutdown().unwrap();
    srv.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Freeze a writer *inside* a torn filter mutation (mid insert-shift,
/// slots moved but metadata lanes not), then prove over the wire that
/// (a) STATS completes while the writer is frozen — the read side never
/// serializes behind the write side — and (b) after release, every
/// member answers its exact value: the optimistic read path never let a
/// torn answer escape through the server.
#[test]
fn stats_and_answers_survive_writer_frozen_mid_shift() {
    let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    const PREFILL: u64 = 3000;
    const CHURN: u64 = 1500;
    let dir = aqf_workloads::unique_temp_dir("aqf-cw-torn");
    let srv = Server::start(fresh_db(13, &dir), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr();

    // Prefill densely enough that inserts shift runs, *before* arming
    // the hook.
    let mut cl = Client::connect(addr).unwrap();
    let members: Vec<(u64, Vec<u8>)> = (0..PREFILL).map(|i| (wkey(i), value_of(wkey(i)))).collect();
    cl.insert_batch(&members).unwrap();

    // The first MidInsertShift firing parks the server's writer thread
    // inside the torn window until the test releases it.
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let mut fired = false;
    testhooks::install_global(Box::new(move |p| {
        if p == TornPoint::MidInsertShift && !fired {
            fired = true;
            let _ = entered_tx.send(());
            let _ = release_rx.recv_timeout(Duration::from_secs(30));
        }
    }));

    let writer = std::thread::spawn(move || {
        let mut cl = Client::connect(addr).unwrap();
        for i in 0..CHURN {
            let k = wkey(PREFILL + i);
            cl.insert(k, &value_of(k)).unwrap();
        }
    });
    entered_rx
        .recv_timeout(Duration::from_secs(20))
        .expect("a churn insert must hit the torn shift window");

    // Writer is now parked mid-mutation, holding the write gate and a
    // shard lock. STATS from a fresh connection must still complete.
    let (stats_tx, stats_rx) = mpsc::channel();
    let prober = std::thread::spawn(move || {
        let mut cl = Client::connect(addr).unwrap();
        let s = cl.stats().unwrap();
        let _ = stats_tx.send(s);
    });
    let stats = stats_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("STATS serialized behind a writer frozen mid-mutation");
    assert!(stats.inserts >= PREFILL);

    release_tx.send(()).unwrap();
    writer.join().unwrap();
    prober.join().unwrap();
    testhooks::clear_global();

    // No torn answer escaped: every member (prefill + churn) answers its
    // exact value through pipelined batch queries.
    let keys: Vec<u64> = (0..PREFILL + CHURN).map(wkey).collect();
    for chunk in keys.chunks(512) {
        let got = cl.query_batch(chunk).unwrap();
        for (j, g) in got.iter().enumerate() {
            assert_eq!(
                g.as_deref(),
                Some(&value_of(chunk[j])[..]),
                "torn answer for key {} after writer churn",
                chunk[j]
            );
        }
    }
    cl.shutdown().unwrap();
    srv.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same concurrent mixed workload must be behaviorally identical
/// under every server mode: default read/write split, the global-lock
/// baseline, and the poll-style multiplexer (which serves all
/// connections from two poller threads).
#[test]
fn every_server_mode_serves_identical_answers() {
    let _t = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let modes = [
        ("rw", ServerConfig::default()),
        (
            "global",
            ServerConfig {
                lock_mode: LockMode::GlobalLock,
                ..ServerConfig::default()
            },
        ),
        (
            "mux",
            ServerConfig {
                mux: true,
                mux_pollers: 2,
                ..ServerConfig::default()
            },
        ),
        (
            "mux-global",
            ServerConfig {
                mux: true,
                mux_pollers: 1,
                lock_mode: LockMode::GlobalLock,
                ..ServerConfig::default()
            },
        ),
    ];
    for (name, cfg) in modes {
        const CLIENTS: u64 = 3;
        const PER: u64 = 400;
        let dir = aqf_workloads::unique_temp_dir(&format!("aqf-cw-mode-{name}"));
        let srv = Server::start(fresh_db(12, &dir), "127.0.0.1:0", cfg).unwrap();
        let addr = srv.local_addr();
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                s.spawn(move || {
                    let mut cl = Client::connect(addr).unwrap();
                    let base = 1 + c * PER * 4;
                    let members: Vec<u64> = (0..PER).map(|i| base + i * 2).collect();
                    for &k in &members[..members.len() / 2] {
                        cl.insert(k, &value_of(k)).unwrap();
                    }
                    let rest: Vec<(u64, Vec<u8>)> = members[members.len() / 2..]
                        .iter()
                        .map(|&k| (k, value_of(k)))
                        .collect();
                    cl.insert_batch(&rest).unwrap();
                    for &k in &members {
                        assert_eq!(
                            cl.query(k).unwrap().as_deref(),
                            Some(&value_of(k)[..]),
                            "{name}: member {k}"
                        );
                    }
                    let got = cl.query_batch(&members).unwrap();
                    for (i, &k) in members.iter().enumerate() {
                        assert_eq!(
                            got[i].as_deref(),
                            Some(&value_of(k)[..]),
                            "{name}: batched member {k}"
                        );
                    }
                    // Deletes and absent keys round-trip too.
                    assert!(cl.delete(members[0]).unwrap(), "{name}: delete");
                    assert_eq!(cl.query(members[0]).unwrap(), None, "{name}: deleted");
                    let absent = (1 << 44) + c * PER * 8;
                    for i in 0..64 {
                        assert_eq!(cl.query(absent + i * 16).unwrap(), None, "{name}: absent");
                    }
                    let _ = cl.adapt_report(absent).unwrap();
                });
            }
        });
        let mut cl = Client::connect(addr).unwrap();
        let stats = cl.stats().unwrap();
        assert_eq!(stats.inserts, CLIENTS * PER, "{name}: insert count");
        assert_eq!(stats.deletes, CLIENTS, "{name}: delete count");
        assert!(stats.connections >= CLIENTS, "{name}: connections");
        cl.shutdown().unwrap();
        srv.wait().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
