//! Protocol corruption conformance, mirroring the snapshot codec's
//! `snapshot_conformance` suite: every way a frame can be damaged in
//! flight must surface as a *typed* [`ProtoError`] — never a panic,
//! never a silently mis-decoded request — and a server fed garbage must
//! keep serving its other connections.

use aqf_filters::registry::FilterSpec;
use aqf_server::proto::{self, decode_frame, encode_frame, op, ProtoError, Request, Response};
use aqf_server::{Client, Server, ServerConfig};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode};
use std::io::{Read, Write};
use std::net::TcpStream;

fn sample_frames() -> Vec<Vec<u8>> {
    vec![
        Request::Query { key: 0xDEAD_BEEF }.encode(),
        Request::Insert {
            key: 7,
            value: b"some value bytes".to_vec(),
        }
        .encode(),
        Request::QueryBatch {
            keys: (0..40).collect(),
        }
        .encode(),
        Request::Stats.encode(),
        Response::Value {
            value: b"v".to_vec(),
            store_accessed: true,
        }
        .encode(),
        Response::BatchValues {
            values: vec![Some(b"a".to_vec()), None],
        }
        .encode(),
        Response::Error {
            code: proto::ErrorCode::Internal,
            message: "boom".into(),
        }
        .encode(),
    ]
}

#[test]
fn every_truncation_is_a_typed_truncated_error() {
    for wire in sample_frames() {
        for n in 0..wire.len() {
            match decode_frame(&wire[..n]) {
                Err(ProtoError::Truncated { needed, available }) => {
                    assert_eq!(available, n);
                    assert!(needed > n, "needed {needed} must exceed available {n}");
                }
                Err(e) => panic!("truncation to {n} gave unexpected error {e}"),
                Ok(_) => panic!("truncation to {n} of a {}-byte frame decoded", wire.len()),
            }
        }
    }
}

#[test]
fn every_flipped_byte_is_a_typed_error() {
    for wire in sample_frames() {
        for i in 0..wire.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = wire.clone();
                bad[i] ^= bit;
                match decode_frame(&bad) {
                    // Magic/version/length corruption fails structurally;
                    // anything else must trip the checksum. A flipped
                    // length byte may also read as Truncated (declared
                    // length grew past the buffer).
                    Err(
                        ProtoError::BadMagic(_)
                        | ProtoError::UnsupportedVersion { .. }
                        | ProtoError::Oversized { .. }
                        | ProtoError::ChecksumMismatch { .. }
                        | ProtoError::Truncated { .. },
                    ) => {}
                    Err(e) => panic!("flip at byte {i} gave unexpected error {e}"),
                    Ok(_) => panic!("flip at byte {i} still decoded"),
                }
            }
        }
    }
}

#[test]
fn wrong_magic_and_version_are_identified_before_the_checksum() {
    let wire = Request::Query { key: 1 }.encode();
    let mut bad = wire.clone();
    bad[0..4].copy_from_slice(b"HTTP");
    assert!(matches!(
        decode_frame(&bad),
        Err(ProtoError::BadMagic(m)) if &m == b"HTTP"
    ));
    let mut bad = wire.clone();
    bad[4..6].copy_from_slice(&9u16.to_le_bytes());
    assert!(matches!(
        decode_frame(&bad),
        Err(ProtoError::UnsupportedVersion {
            found: 9,
            supported: proto::VERSION
        })
    ));
}

#[test]
fn oversized_declared_length_is_rejected_before_allocation() {
    // A frame whose header claims a payload beyond MAX_PAYLOAD must be
    // rejected from the 12 header bytes alone, before any allocation.
    let wire = Request::Query { key: 1 }.encode();
    for declared in [proto::MAX_PAYLOAD + 1, u32::MAX, 1 << 30] {
        let mut bad = wire.clone();
        bad[8..12].copy_from_slice(&declared.to_le_bytes());
        match decode_frame(&bad) {
            Err(ProtoError::Oversized { declared: d, max }) => {
                assert_eq!(d, declared);
                assert_eq!(max, proto::MAX_PAYLOAD);
            }
            other => panic!("declared={declared}: expected Oversized, got {other:?}"),
        }
    }
}

#[test]
fn checksum_valid_splices_fail_payload_decode_not_checksum() {
    // An attacker (or a buggy proxy) can re-seal a frame after tampering:
    // shuffle payload bytes, recompute the checksum. The envelope then
    // validates — the payload decoder must still reject structurally
    // broken contents with Corrupt/UnknownOp, not accept them.
    let assemble = |op_tag: u8, payload: &[u8]| encode_frame(op_tag, 0, payload);

    // (a) Query payload one byte short (7-byte key).
    let spliced = assemble(op::QUERY, &[1, 2, 3, 4, 5, 6, 7]);
    let (frame, _) = decode_frame(&spliced).expect("envelope is checksum-valid");
    assert!(matches!(
        Request::decode(&frame),
        Err(ProtoError::Corrupt(_))
    ));

    // (b) Batch declaring more keys than the payload carries.
    let mut p = Vec::new();
    p.extend_from_slice(&100u32.to_le_bytes());
    p.extend_from_slice(&7u64.to_le_bytes()); // only one key present
    let spliced = assemble(op::QUERY_BATCH, &p);
    let (frame, _) = decode_frame(&spliced).unwrap();
    assert!(matches!(
        Request::decode(&frame),
        Err(ProtoError::Corrupt(_))
    ));

    // (c) Insert whose value length field runs past the payload.
    let mut p = Vec::new();
    p.extend_from_slice(&7u64.to_le_bytes());
    p.extend_from_slice(&1000u32.to_le_bytes()); // value "length"
    p.extend_from_slice(b"short");
    let spliced = assemble(op::INSERT, &p);
    let (frame, _) = decode_frame(&spliced).unwrap();
    assert!(matches!(
        Request::decode(&frame),
        Err(ProtoError::Corrupt(_))
    ));

    // (d) Unknown op tag in a perfectly sealed envelope.
    let spliced = assemble(0x7F, &[]);
    let (frame, _) = decode_frame(&spliced).unwrap();
    assert!(matches!(
        Request::decode(&frame),
        Err(ProtoError::UnknownOp(0x7F))
    ));

    // (e) Response error frame with an out-of-range error code.
    let mut p = Vec::new();
    p.extend_from_slice(&999u16.to_le_bytes());
    p.extend_from_slice(&0u32.to_le_bytes());
    let spliced = assemble(op::RESP_ERROR, &p);
    let (frame, _) = decode_frame(&spliced).unwrap();
    assert!(matches!(
        Response::decode(&frame),
        Err(ProtoError::Corrupt(_))
    ));
}

// ---------------------------------------------------------------------
// Live-server resilience: garbage on one connection never disturbs
// another, and the server never dies.
// ---------------------------------------------------------------------

fn start_server(tag: &str) -> (Server, std::net::SocketAddr, std::path::PathBuf) {
    let dir = aqf_workloads::unique_temp_dir(&format!("aqf-proto-{tag}"));
    let db = FilteredDb::new(
        FilterSpec::new("sharded-aqf", 12)
            .with_seed(5)
            .build()
            .unwrap(),
        &dir,
        128,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap();
    let srv = Server::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr();
    (srv, addr, dir)
}

#[test]
fn garbage_connections_do_not_disturb_healthy_ones() {
    let (srv, addr, dir) = start_server("garbage");
    let mut healthy = Client::connect(addr).unwrap();
    healthy.insert(42, b"answer").unwrap();

    // A rotation of hostile peers, mid-conversation with the healthy one.
    for (i, garbage) in [
        b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(), // alien protocol
        vec![0u8; 64],                                 // zero noise
        {
            let mut g = Request::Query { key: 1 }.encode(); // corrupted frame
            g[20] ^= 0xFF;
            g
        },
        {
            let mut g = b"AQFP".to_vec(); // oversized header
            g.extend_from_slice(&1u16.to_le_bytes());
            g.extend_from_slice(&[op::QUERY, 0]);
            g.extend_from_slice(&u32::MAX.to_le_bytes());
            g
        },
        Request::Query { key: 5 }.encode()[..10].to_vec(), // truncated, then close
    ]
    .into_iter()
    .enumerate()
    {
        let mut evil = TcpStream::connect(addr).unwrap();
        evil.write_all(&garbage).unwrap();
        // The server answers structural garbage with a typed error frame
        // (when the transport allows) and closes; we only require the
        // connection to die without taking the server with it.
        let mut sink = Vec::new();
        evil.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let _ = evil.read_to_end(&mut sink);
        drop(evil);

        // The healthy connection keeps working after every attack...
        assert_eq!(
            healthy.query(42).unwrap().as_deref(),
            Some(&b"answer"[..]),
            "attack {i} broke an unrelated connection"
        );
        // ...and fresh connections are still accepted.
        let mut fresh = Client::connect(addr).unwrap();
        assert_eq!(fresh.query(42).unwrap().as_deref(), Some(&b"answer"[..]));
    }

    let mut c = Client::connect(addr).unwrap();
    c.shutdown().unwrap();
    srv.wait().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn client_surfaces_typed_errors_from_a_lying_server() {
    // A fake "server" that answers every connection with hostile bytes:
    // the client must produce typed errors, never panic or misparse.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hostile: Vec<Vec<u8>> = vec![
        b"not a frame at all".to_vec(),
        {
            let mut f = Response::Ok.encode();
            let last = f.len() - 1;
            f[last] ^= 1; // checksum off by one bit
            f
        },
        Response::Ok.encode()[..5].to_vec(), // truncated then EOF
        encode_frame(0x13, 0, &[]),          // sealed frame, unknown resp op
    ];
    let n = hostile.len();
    let server = std::thread::spawn(move || {
        for payload in hostile {
            let (mut conn, _) = listener.accept().unwrap();
            conn.write_all(&payload).unwrap();
        }
    });
    let mut kinds = Vec::new();
    for _ in 0..n {
        let mut c = Client::connect(addr).unwrap();
        let err = c.stats().unwrap_err();
        kinds.push(std::mem::discriminant(&err));
    }
    server.join().unwrap();
    assert_eq!(
        kinds.iter().collect::<std::collections::HashSet<_>>().len(),
        4,
        "each corruption class must map to its own typed error"
    );
}

use proptest::prelude::*;

/// Proptest case count: default, or `AQF_PROPTEST_CASES` (deep profile).
fn cases(default: u32) -> u32 {
    std::env::var("AQF_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    /// Random single-byte mutations of a sealed frame either fail with a
    /// typed structural error or — impossible in practice, but asserted
    /// anyway — decode to a byte-identical request. The checksum covers
    /// every header and payload byte, so nothing in between exists.
    #[test]
    fn random_mutations_never_decode_to_a_different_request(
        key in any::<u64>(),
        pos in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let req = Request::Query { key };
        let mut wire = req.encode();
        let i = pos % wire.len();
        wire[i] ^= mask;
        match decode_frame(&wire) {
            Ok((frame, _)) => {
                let got = Request::decode(&frame).unwrap();
                prop_assert_eq!(got, req);
            }
            Err(
                ProtoError::BadMagic(_)
                | ProtoError::UnsupportedVersion { .. }
                | ProtoError::Oversized { .. }
                | ProtoError::ChecksumMismatch { .. }
                | ProtoError::Truncated { .. },
            ) => {}
            Err(e) => {
                return Err(TestCaseError::fail(format!("untyped failure: {e}")));
            }
        }
    }
}
