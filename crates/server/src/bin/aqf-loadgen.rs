//! `aqf-loadgen`: multi-connection load generator for `aqf-serverd`.
//!
//! ```text
//! aqf-loadgen [--addr=127.0.0.1:4477] [--connections=4] [--ops=100000]
//!             [--stream=zipf|uniform|adversarial] [--batch=0]
//!             [--write-pct=10] [--zipf-alpha=1.5] [--universe=1048576]
//!             [--value-bytes=8] [--salt=7] [--seed=42] [--prefill=0]
//!             [--warmup=2000] [--mux]
//! ```
//!
//! Each connection runs `--ops` operations: `--write-pct`% inserts, the
//! rest queries, with query keys drawn from the chosen stream shape
//! (`aqf_workloads::KeyStream` — the same generator the in-process
//! benchmarks use). `--batch=N` groups consecutive same-kind ops into
//! `QUERY_BATCH`/`INSERT_BATCH` frames of up to N (0 = one frame per
//! op, which exercises the server's burst-coalescing path instead);
//! batched latencies are amortized per op. The adversarial stream is
//! always per-op: it needs each response's store-accessed flag (its
//! disk-latency oracle) to pick replay keys, exactly like the paper's
//! Fig. 6 adversary. Reports per-op latency percentiles (reads and
//! writes separately) and aggregate throughput.
//!
//! By default each connection gets its own OS thread — fine for a
//! handful, wasteful for hundreds. `--mux` drives *all* connections from
//! one thread instead: each round it pipelines one request down every
//! connection, then collects the responses, so N connections cost N
//! sockets rather than N threads (the client-side mirror of the
//! server's `--mux` poller mode). Mux mode is per-op only (no `--batch`)
//! and does not support the adversarial stream.

use aqf_server::cli::{flag_bool, flag_f64, flag_str, flag_u64};
use aqf_server::{Client, Histogram, Request};
use aqf_workloads::{KeyStream, StreamShape};
use std::time::Instant;

struct ConnReport {
    reads: Histogram,
    writes: Histogram,
    ops: u64,
    secs: f64,
}

fn make_stream(shape: &str, universe: u64, salt: u64, seed: u64) -> KeyStream {
    match shape {
        "uniform" => KeyStream::uniform(universe, salt, seed),
        "zipf" => KeyStream::zipf(universe, flag_f64("zipf-alpha", 1.5), salt, seed),
        "adversarial" => {
            KeyStream::adversarial(flag_f64("adv-frequency", 0.8), universe, salt, seed)
        }
        other => {
            eprintln!("unknown --stream={other} (expected zipf|uniform|adversarial)");
            std::process::exit(2);
        }
    }
}

/// Per-run knobs shared by every connection thread.
#[derive(Clone)]
struct RunSpec {
    ops: u64,
    batch: usize,
    write_pct: u64,
    value_bytes: usize,
    warmup: u64,
    shape: String,
    universe: u64,
    salt: u64,
    seed: u64,
}

fn run_connection(addr: &str, conn_id: u64, spec: &RunSpec) -> ConnReport {
    let RunSpec {
        ops,
        batch,
        write_pct,
        value_bytes,
        warmup,
        universe,
        salt,
        seed,
        ..
    } = *spec;
    let shape = spec.shape.as_str();
    let mut client = Client::connect(addr).expect("connect");
    let mut stream = make_stream(shape, universe, salt, seed ^ ((conn_id + 1) * 0x9E37));
    let mut decide = aqf_workloads::rng(seed.wrapping_add(conn_id * 77));
    use rand::RngExt;

    let adversarial = matches!(stream.shape(), StreamShape::Adversarial { .. });
    // Adversarial warmup: observe responses (hits, fast misses, slow
    // misses) so the arsenal holds real false positives before measuring.
    for _ in 0..if adversarial { warmup } else { 0 } {
        let k = stream.next_key();
        let (v, disk) = client.query_observed(k).expect("warmup query");
        stream.observe(k, disk, v.is_some());
    }

    let mut reads = Histogram::new();
    let mut writes = Histogram::new();
    let mut write_element = conn_id * ops; // disjoint insert ranges
    let mut pending_q: Vec<u64> = Vec::new();
    let mut pending_i: Vec<(u64, Vec<u8>)> = Vec::new();
    let value_of = |k: u64| -> Vec<u8> {
        k.to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(value_bytes)
            .collect()
    };

    let t0 = Instant::now();
    for _ in 0..ops {
        let is_write = decide.random_range(0..100u64) < write_pct;
        if is_write {
            let k = stream.key_for_element(write_element);
            write_element += 1;
            if batch > 1 {
                pending_i.push((k, value_of(k)));
                if pending_i.len() >= batch {
                    let t = Instant::now();
                    client.insert_batch(&pending_i).expect("insert_batch");
                    let ns = t.elapsed().as_nanos() as u64 / pending_i.len() as u64;
                    for _ in 0..pending_i.len() {
                        writes.record(ns);
                    }
                    pending_i.clear();
                }
            } else {
                let t = Instant::now();
                client.insert(k, &value_of(k)).expect("insert");
                writes.record(t.elapsed().as_nanos() as u64);
            }
        } else {
            let k = stream.next_key();
            if adversarial {
                let t = Instant::now();
                let (v, disk) = client.query_observed(k).expect("query");
                reads.record(t.elapsed().as_nanos() as u64);
                stream.observe(k, disk, v.is_some());
            } else if batch > 1 {
                pending_q.push(k);
                if pending_q.len() >= batch {
                    let t = Instant::now();
                    client.query_batch(&pending_q).expect("query_batch");
                    let ns = t.elapsed().as_nanos() as u64 / pending_q.len() as u64;
                    for _ in 0..pending_q.len() {
                        reads.record(ns);
                    }
                    pending_q.clear();
                }
            } else {
                let t = Instant::now();
                client.query(k).expect("query");
                reads.record(t.elapsed().as_nanos() as u64);
            }
        }
    }
    // Flush partial batches.
    if !pending_i.is_empty() {
        client.insert_batch(&pending_i).expect("insert_batch");
    }
    if !pending_q.is_empty() {
        client.query_batch(&pending_q).expect("query_batch");
    }
    ConnReport {
        reads,
        writes,
        ops,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// Drive every connection from this one thread: per round, pipeline one
/// request down each connection, then collect each response. Latency is
/// measured send-to-recv per connection, so it includes the pipelining
/// overlap — the number that matters for a multiplexed client.
fn run_mux(addr: &str, connections: u64, spec: &RunSpec) -> Vec<ConnReport> {
    struct MuxLane {
        client: Client,
        stream: KeyStream,
        decide: rand::rngs::StdRng,
        write_element: u64,
        sent_at: Instant,
        reads: Histogram,
        writes: Histogram,
        was_write: bool,
    }
    use rand::RngExt;
    let t0 = Instant::now();
    let mut lanes: Vec<MuxLane> = (0..connections)
        .map(|conn_id| MuxLane {
            client: Client::connect(addr).expect("connect"),
            stream: make_stream(
                &spec.shape,
                spec.universe,
                spec.salt,
                spec.seed ^ ((conn_id + 1) * 0x9E37),
            ),
            decide: aqf_workloads::rng(spec.seed.wrapping_add(conn_id * 77)),
            write_element: conn_id * spec.ops,
            sent_at: t0,
            reads: Histogram::new(),
            writes: Histogram::new(),
            was_write: false,
        })
        .collect();
    let value_of = |k: u64| -> Vec<u8> {
        k.to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(spec.value_bytes)
            .collect()
    };
    for _ in 0..spec.ops {
        for lane in lanes.iter_mut() {
            lane.was_write = lane.decide.random_range(0..100u64) < spec.write_pct;
            let req = if lane.was_write {
                let k = lane.stream.key_for_element(lane.write_element);
                lane.write_element += 1;
                Request::Insert {
                    key: k,
                    value: value_of(k),
                }
            } else {
                Request::Query {
                    key: lane.stream.next_key(),
                }
            };
            lane.sent_at = Instant::now();
            lane.client.send(&req).expect("send");
        }
        for lane in lanes.iter_mut() {
            lane.client.recv().expect("recv");
            let ns = lane.sent_at.elapsed().as_nanos() as u64;
            if lane.was_write {
                lane.writes.record(ns);
            } else {
                lane.reads.record(ns);
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    lanes
        .into_iter()
        .map(|l| ConnReport {
            reads: l.reads,
            writes: l.writes,
            ops: spec.ops,
            secs,
        })
        .collect()
}

fn main() {
    let addr = flag_str("addr", "127.0.0.1:4477");
    let connections = flag_u64("connections", 4);
    let prefill = flag_u64("prefill", 0);
    let spec = RunSpec {
        ops: flag_u64("ops", 100_000),
        batch: flag_u64("batch", 0) as usize,
        write_pct: flag_u64("write-pct", 10).min(100),
        value_bytes: (flag_u64("value-bytes", 8) as usize).max(1),
        warmup: flag_u64("warmup", 2000),
        shape: flag_str("stream", "zipf"),
        universe: flag_u64("universe", 1 << 20),
        salt: flag_u64("salt", 7),
        seed: flag_u64("seed", 42),
    };

    // Prefill over one connection so query streams hit real members.
    if prefill > 0 {
        let mut c = Client::connect(&addr).expect("connect for prefill");
        let probe = make_stream(&spec.shape, spec.universe, spec.salt, spec.seed);
        let mut batch_buf = Vec::with_capacity(4096);
        for i in 0..prefill {
            let k = probe.key_for_element(i);
            batch_buf.push((k, k.to_le_bytes().to_vec()));
            if batch_buf.len() == 4096 {
                c.insert_batch(&batch_buf).expect("prefill insert");
                batch_buf.clear();
            }
        }
        if !batch_buf.is_empty() {
            c.insert_batch(&batch_buf).expect("prefill insert");
        }
        eprintln!("prefilled {prefill} keys");
    }

    let mux = flag_bool("mux");
    if mux {
        if spec.batch > 1 {
            eprintln!("--mux is per-op only; drop --batch");
            std::process::exit(2);
        }
        if spec.shape == "adversarial" {
            eprintln!("--mux does not support --stream=adversarial");
            std::process::exit(2);
        }
    }

    let t0 = Instant::now();
    let reports: Vec<ConnReport> = if mux {
        run_mux(&addr, connections, &spec)
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..connections)
                .map(|c| {
                    let (addr, spec) = (addr.clone(), spec.clone());
                    s.spawn(move || run_connection(&addr, c, &spec))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        })
    };
    let wall = t0.elapsed().as_secs_f64();

    let mut reads = Histogram::new();
    let mut writes = Histogram::new();
    let mut total_ops = 0u64;
    for r in &reports {
        reads.merge(&r.reads);
        writes.merge(&r.writes);
        total_ops += r.ops;
    }
    let us = |ns: u64| ns as f64 / 1000.0;
    println!(
        "## aqf-loadgen: {} stream, {connections} connections, batch={}{}",
        spec.shape,
        spec.batch,
        if mux { ", mux" } else { "" }
    );
    println!();
    println!("| Op | Count | p50 (us) | p90 (us) | p99 (us) | p999 (us) | max (us) |");
    println!("|---|---|---|---|---|---|---|");
    for (name, h) in [("query", &reads), ("insert", &writes)] {
        println!(
            "| {name} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
            h.count(),
            us(h.percentile(0.5)),
            us(h.percentile(0.9)),
            us(h.percentile(0.99)),
            us(h.percentile(0.999)),
            us(h.max()),
        );
    }
    println!();
    println!(
        "total: {total_ops} ops over {} connections in {wall:.2}s = {:.0} ops/s \
         (per-conn mean {:.2}s)",
        connections,
        total_ops as f64 / wall,
        reports.iter().map(|r| r.secs).sum::<f64>() / reports.len().max(1) as f64,
    );
}
