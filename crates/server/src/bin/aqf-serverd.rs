//! `aqf-serverd`: serve a filter-fronted database over TCP (AQFP
//! protocol).
//!
//! ```text
//! aqf-serverd [--addr=127.0.0.1:4477] [--dir=PATH] [--filter=KIND]
//!             [--qbits=16] [--rbits=9] [--shard-bits=4] [--seed=1]
//!             [--cache-pages=256] [--workers=8] [--burst=256]
//!             [--revmap=merged|split] [--auto-grow=0.9] [--file-backed]
//!             [--global-lock] [--mux] [--mux-pollers=2]
//!             [--fresh] [--no-final-snapshot]
//! ```
//!
//! If `--dir` holds a snapshot manifest (and `--fresh` is absent), the
//! database — filter state included — is recovered from it and the
//! filter-shape flags are ignored; otherwise a fresh filter of
//! `--filter` kind is built through the registry. On graceful shutdown
//! (a SHUTDOWN frame — the SIGTERM stand-in) the server drains, takes an
//! atomic snapshot (unless `--no-final-snapshot`), and exits.
//!
//! `--auto-grow=T` doubles the filter whenever its load factor reaches
//! `T` instead of failing inserts with Full (growable kinds only —
//! currently `aqf` and `sharded-aqf`; other kinds exit with an error).
//! `--file-backed` keeps the filter's slot table in a mapped arena file
//! next to the snapshot, so a later `open` maps it instead of decoding
//! it. Both also apply to recovered databases (auto-grow is not
//! persisted; the arena mode sticks via the snapshot itself).
//!
//! Concurrency: the default is the read/write-split lock mode (queries
//! and stats run concurrently through the filter's seqlock read path;
//! writes serialize on a gate). `--global-lock` reverts to the single
//! global mutex of earlier versions. `--mux` replaces thread-per-
//! connection workers with `--mux-pollers` poller threads, each
//! multiplexing many non-blocking connections — the mode for large
//! mostly-idle connection counts.

use aqf_filters::registry::FilterSpec;
use aqf_server::cli::{flag_bool, flag_f64, flag_str, flag_u64};
use aqf_server::{LockMode, Server, ServerConfig};
use aqf_storage::pager::IoPolicy;
use aqf_storage::system::{FilteredDb, RevMapMode, SNAPSHOT_FILE};
use std::path::Path;

fn main() {
    let addr = flag_str("addr", "127.0.0.1:4477");
    let dir = flag_str("dir", "aqf-server-data");
    let cache_pages = flag_u64("cache-pages", 256) as usize;
    let fresh = flag_bool("fresh");

    let dir_path = Path::new(&dir);
    let mut db = if !fresh && dir_path.join(SNAPSHOT_FILE).is_file() {
        eprintln!("recovering database from {dir}/{SNAPSHOT_FILE}");
        match FilteredDb::open(dir_path, cache_pages, IoPolicy::default()) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("recovery failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        if fresh {
            let _ = std::fs::remove_dir_all(dir_path);
        }
        let kind = flag_str("filter", "sharded-aqf");
        let qbits = flag_u64("qbits", 16) as u32;
        let spec = FilterSpec::new(&kind, qbits)
            .with_rbits(flag_u64("rbits", 9) as u32)
            .with_seed(flag_u64("seed", 1))
            .with_shard_bits(flag_u64("shard-bits", 4) as u32);
        let filter = match spec.build() {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot build filter kind {kind:?}: {e}");
                std::process::exit(2);
            }
        };
        let revmap = match flag_str("revmap", "merged").as_str() {
            "merged" => RevMapMode::Merged,
            "split" => RevMapMode::Split,
            other => {
                eprintln!("unknown --revmap={other} (expected merged|split)");
                std::process::exit(2);
            }
        };
        eprintln!("fresh {kind} filter (2^{qbits} slots) in {dir}");
        match FilteredDb::new(filter, dir_path, cache_pages, IoPolicy::default(), revmap) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot create database: {e}");
                std::process::exit(1);
            }
        }
    };

    let auto_grow = flag_f64("auto-grow", 0.0);
    if auto_grow > 0.0 {
        if let Err(e) = db.set_auto_grow(Some(auto_grow)) {
            eprintln!("--auto-grow={auto_grow} rejected: {e}");
            std::process::exit(2);
        }
        eprintln!("auto-grow enabled at load factor {auto_grow}");
    }
    if flag_bool("file-backed") {
        if let Err(e) = db.enable_file_backing() {
            eprintln!("--file-backed rejected: {e}");
            std::process::exit(2);
        }
        eprintln!("filter table backed by arena file in {dir}");
    }

    let cfg = ServerConfig {
        worker_cap: flag_u64("workers", 8) as usize,
        burst_max: flag_u64("burst", 256) as usize,
        snapshot_on_shutdown: !flag_bool("no-final-snapshot"),
        lock_mode: if flag_bool("global-lock") {
            LockMode::GlobalLock
        } else {
            LockMode::ReadWrite
        },
        mux: flag_bool("mux"),
        mux_pollers: flag_u64("mux-pollers", 2) as usize,
    };
    let server = match Server::start(db, &addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // Parsed by scripts and tests that need the resolved ephemeral port.
    println!("listening on {}", server.local_addr());
    match server.wait() {
        Ok(_db) => eprintln!("shutdown complete"),
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}
