//! `--name=value` argv parsing for the `aqf-serverd` / `aqf-loadgen`
//! binaries. Mirrors `aqf-bench`'s helpers; duplicated here because the
//! bench crate depends on this one (for `fig13_server`), so the server
//! binaries cannot use it without a cycle.

/// Parse `--name=value` as u64.
pub fn flag_u64(name: &str, default: u64) -> u64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Parse `--name=value` as f64.
pub fn flag_f64(name: &str, default: f64) -> f64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

/// Parse `--name=value` as a string.
pub fn flag_str(name: &str, default: &str) -> String {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        .unwrap_or_else(|| default.to_string())
}

/// Presence of a bare `--name` flag.
pub fn flag_bool(name: &str) -> bool {
    let want = format!("--{name}");
    std::env::args().any(|a| a == want)
}
