//! The filter server runtime: a `std::net` TCP acceptor, a capped worker
//! pool fed by a shared accept queue, and per-connection request loops
//! that funnel pipelined bursts into the database's batch entry points.
//!
//! Concurrency model: one `FilteredDb` behind one mutex. Single-op
//! traffic pays one lock acquisition per request; pipelined clients are
//! coalesced — consecutive already-buffered `QUERY` (or `INSERT`) frames
//! on a connection are folded into a single `query_batch`
//! (`insert_batch`) call under one lock hold, which also lets the filter
//! run its quotient-sorted batch walks (and, for the sharded AQF, its
//! lock-free optimistic reads) instead of per-key probes. Worker threads
//! are spawned lazily up to a cap; beyond that, accepted connections
//! wait in the queue until a worker frees up.
//!
//! Lifecycle: a `SHUTDOWN` frame (the container-friendly stand-in for
//! SIGTERM — no signal-handling dependency exists in this environment)
//! flips the shutdown flag; workers finish their current request, drain
//! cleanly, and [`Server::wait`] takes an atomic final snapshot (unless
//! configured off, which is how the crash tests simulate `kill -9`).
//! Startup recovery is the caller's job via [`FilteredDb::open`].

use crate::proto::{op, ErrorCode, Frame, FrameReader, ProtoError, Request, Response, StatsReport};
use aqf_storage::system::FilteredDb;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tunables for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum worker threads (thread-per-connection up to this cap;
    /// further connections queue).
    pub worker_cap: usize,
    /// Maximum frames folded into one batched database call.
    pub burst_max: usize,
    /// Take an atomic snapshot during graceful shutdown. Disabled by the
    /// crash tests to simulate a hard kill.
    pub snapshot_on_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            worker_cap: 8,
            burst_max: 256,
            snapshot_on_shutdown: true,
        }
    }
}

/// State shared by the acceptor and every worker.
struct Shared {
    db: Mutex<FilteredDb>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    workers: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
}

/// A running filter server. Dropping the handle does NOT stop it; send a
/// `SHUTDOWN` frame or call [`Server::shutdown_now`], then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: std::thread::JoinHandle<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `db` until shutdown.
    pub fn start(db: FilteredDb, addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db: Mutex::new(db),
            cfg,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            workers: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Server {
            shared,
            addr: local,
            accept_handle,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flip the shutdown flag and unblock the acceptor, as a `SHUTDOWN`
    /// frame would.
    pub fn shutdown_now(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Join every thread, take the final snapshot if configured, and
    /// hand the database back.
    pub fn wait(self) -> std::io::Result<FilteredDb> {
        let workers = self.accept_handle.join().expect("acceptor must not panic");
        for w in workers {
            let _ = w.join();
        }
        let shared = Arc::into_inner(self.shared).expect("all worker references dropped");
        let mut db = shared
            .db
            .into_inner()
            .expect("db mutex cannot be poisoned after join");
        if shared.cfg.snapshot_on_shutdown {
            db.snapshot()
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        Ok(db)
    }
}

fn request_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    if shared.shutdown.swap(true, Relaxed) {
        return;
    }
    // Wake queued workers so they observe the flag...
    shared.queue_cv.notify_all();
    // ...and poke the blocking accept() with a throwaway connection.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<std::thread::JoinHandle<()>> {
    let mut workers = Vec::new();
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    loop {
        if shared.shutdown.load(Relaxed) {
            break;
        }
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => continue,
        };
        if shared.shutdown.load(Relaxed) {
            break; // the shutdown poke, or a late client; either way: drain.
        }
        shared.connections.fetch_add(1, Relaxed);
        shared.queue.lock().expect("queue lock").push_back(conn);
        shared.queue_cv.notify_one();
        // Lazily grow the pool: one worker per connection up to the cap.
        let live = shared.workers.load(Relaxed);
        if (live as usize) < shared.cfg.worker_cap {
            shared.workers.fetch_add(1, Relaxed);
            let ws = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(ws, addr)));
        }
    }
    shared.queue_cv.notify_all();
    workers
}

fn worker_loop(shared: Arc<Shared>, addr: SocketAddr) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.shutdown.load(Relaxed) {
                    break None;
                }
                q = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue lock")
                    .0;
            }
        };
        let Some(conn) = conn else { return };
        // Serve to completion; protocol errors kill only this connection.
        let _ = serve_conn(&shared, conn, addr);
        if shared.shutdown.load(Relaxed) {
            return;
        }
    }
}

/// Read timeout used to poll the shutdown flag while idle.
const IDLE_TICK: Duration = Duration::from_millis(50);

fn serve_conn(shared: &Arc<Shared>, conn: TcpStream, addr: SocketAddr) -> Result<(), ProtoError> {
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(IDLE_TICK)).ok();
    let mut writer = conn.try_clone().map_err(ProtoError::Io)?;
    let mut reader = FrameReader::new(conn);
    loop {
        let frame = match reader.read_frame() {
            Ok(f) => f,
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Relaxed) {
                    return Ok(()); // drained: no request in flight.
                }
                continue;
            }
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => {
                // Corrupt or alien traffic: answer with a typed error if
                // the transport still works, then drop this connection.
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                let _ = writer.write_all(&resp.encode());
                return Err(e);
            }
        };
        shared.requests.fetch_add(1, Relaxed);
        match frame.op_tag {
            // Burst-coalescing fast paths: fold already-buffered frames
            // of the same op into one batched call under one lock hold.
            op::QUERY => {
                let (mut keys, mut tail) = (Vec::new(), None);
                let first = Request::decode(&frame)?;
                if let Request::Query { key } = first {
                    keys.push(key);
                }
                while keys.len() < shared.cfg.burst_max {
                    match peek_same_op(&mut reader, op::QUERY)? {
                        Peek::Same(f) => {
                            shared.requests.fetch_add(1, Relaxed);
                            if let Request::Query { key } = Request::decode(&f)? {
                                keys.push(key);
                            }
                        }
                        Peek::Other(f) => {
                            tail = Some(f);
                            break;
                        }
                        Peek::Empty => break,
                    }
                }
                let out = if keys.len() == 1 {
                    // Single query: report whether the backing store was
                    // touched (stats delta) — the adversary's oracle.
                    let mut db = shared.db.lock().expect("db lock");
                    let negs_before = db.stats().filter_negatives;
                    let got = db.query(keys[0]).map_err(ProtoError::Io)?;
                    let accessed = db.stats().filter_negatives == negs_before;
                    match got {
                        Some(value) => Response::Value {
                            value,
                            store_accessed: accessed,
                        },
                        None => Response::NotFound {
                            store_accessed: accessed,
                        },
                    }
                    .encode()
                } else {
                    let values = {
                        let mut db = shared.db.lock().expect("db lock");
                        db.query_batch(&keys).map_err(ProtoError::Io)?
                    };
                    // One response frame per request frame, in order.
                    let mut out = Vec::new();
                    for value in values {
                        out.extend(
                            match value {
                                Some(value) => Response::Value {
                                    value,
                                    store_accessed: false,
                                },
                                None => Response::NotFound {
                                    store_accessed: false,
                                },
                            }
                            .encode(),
                        );
                    }
                    out
                };
                writer.write_all(&out).map_err(ProtoError::Io)?;
                if let Some(f) = tail {
                    handle_one(shared, &f, &mut writer)?;
                    if f.op_tag == op::SHUTDOWN {
                        request_shutdown(shared, addr);
                        return Ok(());
                    }
                }
            }
            op::INSERT => {
                let mut items = Vec::new();
                if let Request::Insert { key, value } = Request::decode(&frame)? {
                    items.push((key, value));
                }
                let mut tail = None;
                while items.len() < shared.cfg.burst_max {
                    match peek_same_op(&mut reader, op::INSERT)? {
                        Peek::Same(f) => {
                            shared.requests.fetch_add(1, Relaxed);
                            if let Request::Insert { key, value } = Request::decode(&f)? {
                                items.push((key, value));
                            }
                        }
                        Peek::Other(f) => {
                            tail = Some(f);
                            break;
                        }
                        Peek::Empty => break,
                    }
                }
                let n = items.len();
                let result = {
                    let refs: Vec<(u64, &[u8])> =
                        items.iter().map(|(k, v)| (*k, v.as_slice())).collect();
                    let mut db = shared.db.lock().expect("db lock");
                    db.insert_batch(&refs).map_err(ProtoError::Io)?
                };
                let one = match result {
                    Ok(()) => Response::Ok.encode(),
                    Err(e) => Response::Error {
                        code: ErrorCode::Filter,
                        message: e.to_string(),
                    }
                    .encode(),
                };
                let mut out = Vec::with_capacity(one.len() * n);
                for _ in 0..n {
                    out.extend_from_slice(&one);
                }
                writer.write_all(&out).map_err(ProtoError::Io)?;
                if let Some(f) = tail {
                    handle_one(shared, &f, &mut writer)?;
                    if f.op_tag == op::SHUTDOWN {
                        request_shutdown(shared, addr);
                        return Ok(());
                    }
                }
            }
            op::SHUTDOWN => {
                writer
                    .write_all(&Response::Ok.encode())
                    .map_err(ProtoError::Io)?;
                request_shutdown(shared, addr);
                return Ok(());
            }
            _ => handle_one(shared, &frame, &mut writer)?,
        }
    }
}

/// Result of a non-blocking look at the next buffered frame.
enum Peek {
    /// Next frame has the wanted op.
    Same(Frame),
    /// Next frame is a different op (returned for ordered handling).
    Other(Frame),
    /// No complete frame is buffered.
    Empty,
}

/// Pop the next *already-buffered* frame if any — never blocks on the
/// socket, so burst coalescing adds no latency to solo requests.
fn peek_same_op(reader: &mut FrameReader<TcpStream>, want: u8) -> Result<Peek, ProtoError> {
    match reader.buffered_frame()? {
        Some(f) if f.op_tag == want => Ok(Peek::Same(f)),
        Some(f) => Ok(Peek::Other(f)),
        None => Ok(Peek::Empty),
    }
}

/// Serve one non-coalesced request frame.
fn handle_one(
    shared: &Arc<Shared>,
    frame: &Frame,
    writer: &mut TcpStream,
) -> Result<(), ProtoError> {
    let req = match Request::decode(frame) {
        Ok(r) => r,
        Err(e) => {
            let resp = Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            };
            writer.write_all(&resp.encode()).map_err(ProtoError::Io)?;
            return Err(e);
        }
    };
    let resp = match req {
        Request::Insert { key, value } => {
            let mut db = shared.db.lock().expect("db lock");
            match db.insert(key, &value).map_err(ProtoError::Io)? {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error {
                    code: ErrorCode::Filter,
                    message: e.to_string(),
                },
            }
        }
        Request::Query { key } => {
            let mut db = shared.db.lock().expect("db lock");
            let negs_before = db.stats().filter_negatives;
            let got = db.query(key).map_err(ProtoError::Io)?;
            let accessed = db.stats().filter_negatives == negs_before;
            match got {
                Some(value) => Response::Value {
                    value,
                    store_accessed: accessed,
                },
                None => Response::NotFound {
                    store_accessed: accessed,
                },
            }
        }
        Request::Delete { key } => {
            let mut db = shared.db.lock().expect("db lock");
            match db.delete(key).map_err(ProtoError::Io)? {
                Ok(removed) => Response::Deleted { removed },
                Err(e) => Response::Error {
                    code: ErrorCode::Unsupported,
                    message: e.to_string(),
                },
            }
        }
        Request::AdaptReport { key } => {
            // Re-run the query under the lock: FilteredDb's verify path
            // adapts the filter on a refuted positive as a side effect.
            let mut db = shared.db.lock().expect("db lock");
            let adapts_before = db.stats().adapts;
            let _ = db.query(key).map_err(ProtoError::Io)?;
            Response::Adapted {
                adapted: db.stats().adapts > adapts_before,
            }
        }
        Request::QueryBatch { keys } => {
            let mut db = shared.db.lock().expect("db lock");
            Response::BatchValues {
                values: db.query_batch(&keys).map_err(ProtoError::Io)?,
            }
        }
        Request::InsertBatch { items } => {
            let refs: Vec<(u64, &[u8])> = items.iter().map(|(k, v)| (*k, v.as_slice())).collect();
            let mut db = shared.db.lock().expect("db lock");
            match db.insert_batch(&refs).map_err(ProtoError::Io)? {
                Ok(()) => Response::BatchOk {
                    inserted: items.len() as u64,
                },
                Err(e) => Response::Error {
                    code: ErrorCode::Filter,
                    message: e.to_string(),
                },
            }
        }
        Request::Stats => {
            let db = shared.db.lock().expect("db lock");
            let s = db.stats();
            let f = db.filter();
            Response::Stats(StatsReport {
                filter_kind: f.kind().to_string(),
                filter_len: f.len(),
                filter_bytes: f.size_in_bytes() as u64,
                inserts: s.inserts,
                queries: s.queries,
                deletes: s.deletes,
                filter_negatives: s.filter_negatives,
                false_positives: s.false_positives,
                adapts: s.adapts,
                connections: shared.connections.load(Relaxed),
                requests: shared.requests.load(Relaxed),
                capacity: f.capacity(),
                load_factor_ppm: StatsReport::ppm(f.load_factor()),
                grows: f.grows(),
            })
        }
        Request::Snapshot => {
            let mut db = shared.db.lock().expect("db lock");
            match db.snapshot() {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error {
                    code: ErrorCode::Snapshot,
                    message: e.to_string(),
                },
            }
        }
        Request::Shutdown => Response::Ok, // tag handled by the caller
    };
    writer.write_all(&resp.encode()).map_err(ProtoError::Io)
}
