//! The filter server runtime: a `std::net` TCP acceptor, per-worker
//! sharded connection queues (with work stealing), an optional
//! poll-style connection multiplexer, and per-connection request loops
//! that funnel pipelined bursts into the database's batch entry points.
//!
//! Concurrency model ([`LockMode`]):
//!
//! - [`LockMode::ReadWrite`] (default): the database sits behind an
//!   `RwLock` plus a write gate. QUERY / QUERY_BATCH / STATS run on the
//!   read side — concurrently across worker threads — through
//!   `FilteredDb`'s shared (`&self`) paths: sharded-AQF probes go through
//!   the per-shard seqlock optimistic read path, B-tree reads through the
//!   store's tree lock, and STATS reads nothing but atomic counters.
//!   INSERT / INSERT_BATCH / ADAPT_REPORT serialize on the write gate
//!   but — when the filter supports concurrent reads — still run under
//!   the *shared* lock, so readers never stall behind them; a mid-write
//!   auto-grow parks readers of that one shard on its seqlock (the epoch
//!   fence) while every other shard keeps serving. DELETE and SNAPSHOT
//!   take the exclusive lock: deletes shift reverse-map ranks across two
//!   structures (filter + B-tree), which cannot be exposed to concurrent
//!   verification, and snapshots need the whole system quiescent.
//!   Filters without concurrent-read support degrade gracefully: reads
//!   still share the read lock with each other, writes go exclusive, and
//!   a read that needs adaptation escapes to the write side
//!   (`SharedRead::NeedsWrite`) and retries exclusively.
//! - [`LockMode::GlobalLock`]: the pre-PR-10 baseline — one global mutex
//!   around everything. Kept selectable for benchmarking
//!   (`fig13_server --compare=locking`) and as the conservative fallback.
//!
//! Pipelined clients are coalesced either way: consecutive
//! already-buffered `QUERY` (or `INSERT`) frames on a connection fold
//! into a single `query_batch` (`insert_batch`) call under one lock
//! acquisition, which also lets the filter run its quotient-sorted batch
//! walks instead of per-key probes.
//!
//! Connection scheduling: the acceptor round-robins connections across
//! per-worker queues (no single hot queue mutex); idle workers steal
//! from their neighbors. With [`ServerConfig::mux`] set, connections go
//! to a small pool of poller threads instead, each multiplexing many
//! non-blocking sockets through a readiness scan with adaptive backoff
//! (std-only — no epoll binding exists in this environment), so
//! thousands of mostly-idle clients cost buffers, not threads.
//!
//! Lifecycle: a `SHUTDOWN` frame (the container-friendly stand-in for
//! SIGTERM — no signal-handling dependency exists in this environment)
//! flips the shutdown flag; workers finish their current request, drain
//! cleanly, and [`Server::wait`] takes an atomic final snapshot (unless
//! configured off, which is how the crash tests simulate `kill -9`).
//! Startup recovery is the caller's job via [`FilteredDb::open`].

use crate::proto::{op, ErrorCode, Frame, FrameReader, ProtoError, Request, Response, StatsReport};
use aqf_storage::system::{FilteredDb, SharedRead};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// How the server synchronizes access to the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// One global mutex around the whole `FilteredDb` (the pre-PR-10
    /// baseline; every op serializes).
    GlobalLock,
    /// Read/write split: concurrent reads through `FilteredDb`'s shared
    /// paths, writes serialized on a gate (see the module docs).
    ReadWrite,
}

/// Tunables for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum worker threads (thread-per-connection up to this cap;
    /// further connections queue). Ignored in mux mode.
    pub worker_cap: usize,
    /// Maximum frames folded into one batched database call.
    pub burst_max: usize,
    /// Take an atomic snapshot during graceful shutdown. Disabled by the
    /// crash tests to simulate a hard kill.
    pub snapshot_on_shutdown: bool,
    /// Database locking discipline.
    pub lock_mode: LockMode,
    /// Multiplex connections over a small poller pool instead of
    /// thread-per-connection workers.
    pub mux: bool,
    /// Poller threads in mux mode.
    pub mux_pollers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            worker_cap: 8,
            burst_max: 256,
            snapshot_on_shutdown: true,
            lock_mode: LockMode::ReadWrite,
            mux: false,
            mux_pollers: 2,
        }
    }
}

/// The database behind the selected locking discipline.
enum Db {
    Global(Mutex<FilteredDb>),
    Shared {
        db: RwLock<FilteredDb>,
        /// Serializes writers among themselves (they hold the *read*
        /// lock when the filter is internally synchronized, so the
        /// RwLock alone would let writers interleave). Lock order is
        /// always gate before db lock.
        write_gate: Mutex<()>,
        /// The filter supports concurrent `&self` writes (per-shard
        /// seqlocks); writers may run under the shared lock.
        concurrent: bool,
    },
}

/// One worker's connection queue.
struct ConnQueue {
    q: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
}

/// Cached filter geometry for the STATS fast path. The filter's own
/// `len()`/`capacity()`/`load_factor()` sum over per-shard mutexes, so
/// calling them from STATS would serialize behind an in-flight writer
/// holding a shard lock. Instead, writers refresh this cache while they
/// hold the write gate (shards uncontended), and STATS reads only these
/// atomics plus the database's atomic counters — it never waits on any
/// writer. Staleness is bounded by one in-flight write.
struct FilterGeom {
    kind: String,
    len: AtomicU64,
    bytes: AtomicU64,
    capacity: AtomicU64,
    load_ppm: AtomicU64,
    grows: AtomicU64,
}

impl FilterGeom {
    fn capture(db: &FilteredDb) -> FilterGeom {
        let f = db.filter();
        FilterGeom {
            kind: f.kind().to_string(),
            len: AtomicU64::new(f.len()),
            bytes: AtomicU64::new(f.size_in_bytes() as u64),
            capacity: AtomicU64::new(f.capacity()),
            load_ppm: AtomicU64::new(StatsReport::ppm(f.load_factor())),
            grows: AtomicU64::new(f.grows()),
        }
    }

    /// Re-read the filter's geometry. Callers must hold the write gate
    /// (so no shard lock is held by anyone else for long).
    fn refresh(&self, db: &FilteredDb) {
        let f = db.filter();
        self.len.store(f.len(), Relaxed);
        self.bytes.store(f.size_in_bytes() as u64, Relaxed);
        self.capacity.store(f.capacity(), Relaxed);
        self.load_ppm
            .store(StatsReport::ppm(f.load_factor()), Relaxed);
        self.grows.store(f.grows(), Relaxed);
    }
}

/// State shared by the acceptor and every worker/poller.
struct Shared {
    db: Db,
    geom: FilterGeom,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    /// Per-worker queues (threaded mode); acceptor round-robins, idle
    /// workers steal.
    queues: Vec<ConnQueue>,
    /// Poller inboxes (mux mode).
    mux_inboxes: Vec<Mutex<Vec<TcpStream>>>,
    connections: AtomicU64,
    requests: AtomicU64,
}

impl Shared {
    fn lock_global<'a>(m: &'a Mutex<FilteredDb>) -> std::sync::MutexGuard<'a, FilteredDb> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn read<'a>(db: &'a RwLock<FilteredDb>) -> std::sync::RwLockReadGuard<'a, FilteredDb> {
        db.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write<'a>(db: &'a RwLock<FilteredDb>) -> std::sync::RwLockWriteGuard<'a, FilteredDb> {
        db.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn gate<'a>(g: &'a Mutex<()>) -> std::sync::MutexGuard<'a, ()> {
        g.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running filter server. Dropping the handle does NOT stop it; send a
/// `SHUTDOWN` frame or call [`Server::shutdown_now`], then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: std::thread::JoinHandle<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `db` until shutdown.
    pub fn start(db: FilteredDb, addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let geom = FilterGeom::capture(&db);
        let db = match cfg.lock_mode {
            LockMode::GlobalLock => Db::Global(Mutex::new(db)),
            LockMode::ReadWrite => Db::Shared {
                concurrent: db.supports_concurrent_ops(),
                db: RwLock::new(db),
                write_gate: Mutex::new(()),
            },
        };
        let queues = (0..cfg.worker_cap.max(1))
            .map(|_| ConnQueue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect();
        let mux_inboxes = (0..if cfg.mux { cfg.mux_pollers.max(1) } else { 0 })
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let shared = Arc::new(Shared {
            db,
            geom,
            cfg,
            shutdown: AtomicBool::new(false),
            queues,
            mux_inboxes,
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Server {
            shared,
            addr: local,
            accept_handle,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flip the shutdown flag and unblock the acceptor, as a `SHUTDOWN`
    /// frame would.
    pub fn shutdown_now(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Join every thread, take the final snapshot if configured, and
    /// hand the database back.
    pub fn wait(self) -> std::io::Result<FilteredDb> {
        let workers = self.accept_handle.join().expect("acceptor must not panic");
        for w in workers {
            let _ = w.join();
        }
        let shared = Arc::into_inner(self.shared).expect("all worker references dropped");
        let mut db = match shared.db {
            Db::Global(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
            Db::Shared { db, .. } => db.into_inner().unwrap_or_else(PoisonError::into_inner),
        };
        if shared.cfg.snapshot_on_shutdown {
            db.snapshot()
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        Ok(db)
    }
}

fn request_shutdown(shared: &Arc<Shared>, addr: SocketAddr) {
    if shared.shutdown.swap(true, Relaxed) {
        return;
    }
    // Wake queued workers so they observe the flag...
    for q in &shared.queues {
        q.cv.notify_all();
    }
    // ...and poke the blocking accept() with a throwaway connection.
    // (Mux pollers run on a bounded backoff and observe the flag alone.)
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    if shared.cfg.mux {
        for i in 0..shared.mux_inboxes.len() {
            let ps = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || poller_loop(ps, addr, i)));
        }
    }
    let mut accepted = 0usize;
    let mut spawned_workers = 0usize;
    loop {
        if shared.shutdown.load(Relaxed) {
            break;
        }
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => continue,
        };
        if shared.shutdown.load(Relaxed) {
            break; // the shutdown poke, or a late client; either way: drain.
        }
        shared.connections.fetch_add(1, Relaxed);
        if shared.cfg.mux {
            let slot = accepted % shared.mux_inboxes.len();
            shared.mux_inboxes[slot]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(conn);
        } else {
            // Round-robin across per-worker queues; spawn each worker
            // lazily the first time its queue can receive work.
            let cap = shared.queues.len();
            if spawned_workers < cap {
                let idx = spawned_workers;
                spawned_workers += 1;
                let ws = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || worker_loop(ws, addr, idx)));
            }
            let slot = accepted % spawned_workers;
            shared.queues[slot]
                .q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(conn);
            shared.queues[slot].cv.notify_one();
        }
        accepted += 1;
    }
    for q in &shared.queues {
        q.cv.notify_all();
    }
    handles
}

/// Pop a connection for worker `idx`: own queue first, then steal from
/// the other queues (busiest-neighbor would need a second scan; any
/// non-empty queue is fine at this scale).
fn next_conn(shared: &Shared, idx: usize) -> Option<TcpStream> {
    let own = &shared.queues[idx];
    {
        let mut q = own.q.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(c) = q.pop_front() {
                return Some(c);
            }
            // Steal before parking: a connection may sit in a busy
            // worker's queue.
            drop(q);
            for (j, other) in shared.queues.iter().enumerate() {
                if j == idx {
                    continue;
                }
                if let Some(c) = other
                    .q
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .pop_front()
                {
                    return Some(c);
                }
            }
            if shared.shutdown.load(Relaxed) {
                return None;
            }
            q = own.q.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(c) = q.pop_front() {
                return Some(c);
            }
            q = own
                .cv
                .wait_timeout(q, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

fn worker_loop(shared: Arc<Shared>, addr: SocketAddr, idx: usize) {
    loop {
        let Some(conn) = next_conn(&shared, idx) else {
            return;
        };
        // Serve to completion; protocol errors kill only this connection.
        let _ = serve_conn(&shared, conn, addr);
        if shared.shutdown.load(Relaxed) {
            return;
        }
    }
}

/// Read timeout used to poll the shutdown flag while idle.
const IDLE_TICK: Duration = Duration::from_millis(50);

/// Request-loop control flow after a frame is handled.
enum Flow {
    Continue,
    Shutdown,
}

fn serve_conn(shared: &Arc<Shared>, conn: TcpStream, addr: SocketAddr) -> Result<(), ProtoError> {
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(IDLE_TICK)).ok();
    let mut writer = conn.try_clone().map_err(ProtoError::Io)?;
    let mut reader = FrameReader::new(conn);
    loop {
        let frame = match reader.read_frame() {
            Ok(f) => f,
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Relaxed) {
                    return Ok(()); // drained: no request in flight.
                }
                continue;
            }
            Err(ProtoError::Closed) => return Ok(()),
            Err(e) => {
                // Corrupt or alien traffic: answer with a typed error if
                // the transport still works, then drop this connection.
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                let _ = writer.write_all(&resp.encode());
                return Err(e);
            }
        };
        shared.requests.fetch_add(1, Relaxed);
        match frame.op_tag {
            // Burst-coalescing fast paths: fold already-buffered frames
            // of the same op into one batched call under one lock hold.
            op::QUERY => {
                let (mut keys, mut tail) = (Vec::new(), None);
                let first = Request::decode(&frame)?;
                if let Request::Query { key } = first {
                    keys.push(key);
                }
                while keys.len() < shared.cfg.burst_max {
                    match peek_same_op(&mut reader, op::QUERY)? {
                        Peek::Same(f) => {
                            shared.requests.fetch_add(1, Relaxed);
                            if let Request::Query { key } = Request::decode(&f)? {
                                keys.push(key);
                            }
                        }
                        Peek::Other(f) => {
                            tail = Some(f);
                            break;
                        }
                        Peek::Empty => break,
                    }
                }
                let out = if keys.len() == 1 {
                    query_one(shared, keys[0])?.encode()
                } else {
                    let values = query_batch(shared, &keys)?;
                    // One response frame per request frame, in order.
                    let mut out = Vec::new();
                    for value in values {
                        out.extend(
                            match value {
                                Some(value) => Response::Value {
                                    value,
                                    store_accessed: false,
                                },
                                None => Response::NotFound {
                                    store_accessed: false,
                                },
                            }
                            .encode(),
                        );
                    }
                    out
                };
                writer.write_all(&out).map_err(ProtoError::Io)?;
                if let Some(f) = tail {
                    if let Flow::Shutdown = handle_frame(shared, &f, &mut writer)? {
                        request_shutdown(shared, addr);
                        return Ok(());
                    }
                }
            }
            op::INSERT => {
                let mut items = Vec::new();
                if let Request::Insert { key, value } = Request::decode(&frame)? {
                    items.push((key, value));
                }
                let mut tail = None;
                while items.len() < shared.cfg.burst_max {
                    match peek_same_op(&mut reader, op::INSERT)? {
                        Peek::Same(f) => {
                            shared.requests.fetch_add(1, Relaxed);
                            if let Request::Insert { key, value } = Request::decode(&f)? {
                                items.push((key, value));
                            }
                        }
                        Peek::Other(f) => {
                            tail = Some(f);
                            break;
                        }
                        Peek::Empty => break,
                    }
                }
                let n = items.len();
                let result = {
                    let refs: Vec<(u64, &[u8])> =
                        items.iter().map(|(k, v)| (*k, v.as_slice())).collect();
                    insert_batch(shared, &refs)?
                };
                let one = match result {
                    Ok(()) => Response::Ok.encode(),
                    Err(e) => Response::Error {
                        code: ErrorCode::Filter,
                        message: e.to_string(),
                    }
                    .encode(),
                };
                let mut out = Vec::with_capacity(one.len() * n);
                for _ in 0..n {
                    out.extend_from_slice(&one);
                }
                writer.write_all(&out).map_err(ProtoError::Io)?;
                if let Some(f) = tail {
                    if let Flow::Shutdown = handle_frame(shared, &f, &mut writer)? {
                        request_shutdown(shared, addr);
                        return Ok(());
                    }
                }
            }
            _ => {
                if let Flow::Shutdown = handle_frame(shared, &frame, &mut writer)? {
                    request_shutdown(shared, addr);
                    return Ok(());
                }
            }
        }
    }
}

/// Result of a non-blocking look at the next buffered frame.
enum Peek {
    /// Next frame has the wanted op.
    Same(Frame),
    /// Next frame is a different op (returned for ordered handling).
    Other(Frame),
    /// No complete frame is buffered.
    Empty,
}

/// Pop the next *already-buffered* frame if any — never blocks on the
/// socket, so burst coalescing adds no latency to solo requests.
fn peek_same_op(reader: &mut FrameReader<TcpStream>, want: u8) -> Result<Peek, ProtoError> {
    match reader.buffered_frame()? {
        Some(f) if f.op_tag == want => Ok(Peek::Same(f)),
        Some(f) => Ok(Peek::Other(f)),
        None => Ok(Peek::Empty),
    }
}

// ----------------------------------------------------------------------
// Database operations under the configured lock mode
// ----------------------------------------------------------------------

/// Single QUERY, reporting whether the backing store was touched (the
/// adversary's oracle behind `FLAG_STORE_ACCESSED`).
fn query_one(shared: &Shared, key: u64) -> Result<Response, ProtoError> {
    let respond = |got: Option<Vec<u8>>, accessed: bool| match got {
        Some(value) => Response::Value {
            value,
            store_accessed: accessed,
        },
        None => Response::NotFound {
            store_accessed: accessed,
        },
    };
    match &shared.db {
        Db::Global(m) => {
            let mut db = Shared::lock_global(m);
            // Exact under the global lock: nothing else moves the counter.
            let negs_before = db.stats().filter_negatives;
            let got = db.query(key).map_err(ProtoError::Io)?;
            let accessed = db.stats().filter_negatives == negs_before;
            Ok(respond(got, accessed))
        }
        Db::Shared { db, write_gate, .. } => {
            {
                let d = Shared::read(db);
                if let SharedRead::Done(o) = d.query_shared(key).map_err(ProtoError::Io)? {
                    return Ok(respond(o.value, o.store_accessed));
                }
            }
            // The filter needs exclusive adaptation: retry on the write
            // side (rare — refuted positives on non-concurrent filters).
            let _g = Shared::gate(write_gate);
            let mut d = Shared::write(db);
            let negs_before = d.stats().filter_negatives;
            let got = d.query(key).map_err(ProtoError::Io)?;
            let accessed = d.stats().filter_negatives == negs_before;
            shared.geom.refresh(&d); // adaptation may extend slots
            Ok(respond(got, accessed))
        }
    }
}

fn query_batch(shared: &Shared, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>, ProtoError> {
    match &shared.db {
        Db::Global(m) => Shared::lock_global(m)
            .query_batch(keys)
            .map_err(ProtoError::Io),
        Db::Shared { db, write_gate, .. } => {
            {
                let d = Shared::read(db);
                if let SharedRead::Done(v) = d.query_batch_shared(keys).map_err(ProtoError::Io)? {
                    return Ok(v);
                }
            }
            let _g = Shared::gate(write_gate);
            let mut d = Shared::write(db);
            let got = d.query_batch(keys).map_err(ProtoError::Io)?;
            shared.geom.refresh(&d);
            Ok(got)
        }
    }
}

fn insert_batch(
    shared: &Shared,
    items: &[(u64, &[u8])],
) -> Result<Result<(), aqf_filters::FilterError>, ProtoError> {
    match &shared.db {
        Db::Global(m) => Shared::lock_global(m)
            .insert_batch(items)
            .map_err(ProtoError::Io),
        Db::Shared {
            db,
            write_gate,
            concurrent,
        } => {
            let _g = Shared::gate(write_gate);
            let got = if *concurrent {
                // Writers hold the gate + the *shared* lock: the filter
                // serializes internally and readers keep flowing.
                let d = Shared::read(db);
                let got = d.insert_batch_shared(items);
                shared.geom.refresh(&d);
                got
            } else {
                let mut d = Shared::write(db);
                let got = d.insert_batch(items);
                shared.geom.refresh(&d);
                got
            };
            got.map_err(ProtoError::Io)
        }
    }
}

/// Serve one non-coalesced request frame, appending response bytes to
/// `writer` (a socket in threaded mode, a connection outbox in mux
/// mode). Returns [`Flow::Shutdown`] for a SHUTDOWN frame — the caller
/// owns flag-flipping and teardown.
fn handle_frame(
    shared: &Shared,
    frame: &Frame,
    writer: &mut impl Write,
) -> Result<Flow, ProtoError> {
    let req = match Request::decode(frame) {
        Ok(r) => r,
        Err(e) => {
            let resp = Response::Error {
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            };
            writer.write_all(&resp.encode()).map_err(ProtoError::Io)?;
            return Err(e);
        }
    };
    let resp = match req {
        Request::Insert { key, value } => {
            let result = match &shared.db {
                Db::Global(m) => Shared::lock_global(m)
                    .insert(key, &value)
                    .map_err(ProtoError::Io)?,
                Db::Shared {
                    db,
                    write_gate,
                    concurrent,
                } => {
                    let _g = Shared::gate(write_gate);
                    let got = if *concurrent {
                        let d = Shared::read(db);
                        let got = d.insert_shared(key, &value);
                        shared.geom.refresh(&d);
                        got
                    } else {
                        let mut d = Shared::write(db);
                        let got = d.insert(key, &value);
                        shared.geom.refresh(&d);
                        got
                    };
                    got.map_err(ProtoError::Io)?
                }
            };
            match result {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error {
                    code: ErrorCode::Filter,
                    message: e.to_string(),
                },
            }
        }
        Request::Query { key } => query_one(shared, key)?,
        Request::Delete { key } => {
            // Deletes always take the exclusive lock, even for
            // concurrent filters: a delete shifts reverse-map ranks in
            // the filter and the B-tree as two separate mutations, and a
            // reader verifying (or adapting) between them could act on a
            // location that now names a different fingerprint.
            let result = match &shared.db {
                Db::Global(m) => Shared::lock_global(m).delete(key).map_err(ProtoError::Io)?,
                Db::Shared { db, write_gate, .. } => {
                    let _g = Shared::gate(write_gate);
                    let mut d = Shared::write(db);
                    let got = d.delete(key).map_err(ProtoError::Io)?;
                    shared.geom.refresh(&d);
                    got
                }
            };
            match result {
                Ok(removed) => Response::Deleted { removed },
                Err(e) => Response::Error {
                    code: ErrorCode::Unsupported,
                    message: e.to_string(),
                },
            }
        }
        Request::AdaptReport { key } => {
            // Re-run the query: FilteredDb's verify path adapts the
            // filter on a refuted positive as a side effect.
            let adapted = match &shared.db {
                Db::Global(m) => {
                    let mut db = Shared::lock_global(m);
                    let adapts_before = db.stats().adapts;
                    let _ = db.query(key).map_err(ProtoError::Io)?;
                    db.stats().adapts > adapts_before
                }
                Db::Shared {
                    db,
                    write_gate,
                    concurrent,
                } => {
                    let _g = Shared::gate(write_gate);
                    if *concurrent {
                        let d = Shared::read(db);
                        let adapted = match d.query_shared(key).map_err(ProtoError::Io)? {
                            SharedRead::Done(o) => o.adapted,
                            SharedRead::NeedsWrite => {
                                unreachable!("concurrent filters adapt on the shared path")
                            }
                        };
                        shared.geom.refresh(&d);
                        adapted
                    } else {
                        let mut d = Shared::write(db);
                        let adapts_before = d.stats().adapts;
                        let _ = d.query(key).map_err(ProtoError::Io)?;
                        shared.geom.refresh(&d);
                        d.stats().adapts > adapts_before
                    }
                }
            };
            Response::Adapted { adapted }
        }
        Request::QueryBatch { keys } => Response::BatchValues {
            values: query_batch(shared, &keys)?,
        },
        Request::InsertBatch { items } => {
            let refs: Vec<(u64, &[u8])> = items.iter().map(|(k, v)| (*k, v.as_slice())).collect();
            match insert_batch(shared, &refs)? {
                Ok(()) => Response::BatchOk {
                    inserted: items.len() as u64,
                },
                Err(e) => Response::Error {
                    code: ErrorCode::Filter,
                    message: e.to_string(),
                },
            }
        }
        Request::Stats => {
            let geom = &shared.geom;
            let (s, filter_len, filter_bytes, capacity, load_factor_ppm, grows) = match &shared.db {
                Db::Global(m) => {
                    // Exact under the global lock.
                    let db = Shared::lock_global(m);
                    let f = db.filter();
                    (
                        db.stats(),
                        f.len(),
                        f.size_in_bytes() as u64,
                        f.capacity(),
                        StatsReport::ppm(f.load_factor()),
                        f.grows(),
                    )
                }
                Db::Shared { db, .. } => {
                    // Read side only: the database's atomic counters plus
                    // the writer-maintained geometry cache. Never touches
                    // the write gate, the exclusive lock, or any shard
                    // lock — STATS completes even while a writer is
                    // mid-mutation.
                    let s = Shared::read(db).stats();
                    (
                        s,
                        geom.len.load(Relaxed),
                        geom.bytes.load(Relaxed),
                        geom.capacity.load(Relaxed),
                        geom.load_ppm.load(Relaxed),
                        geom.grows.load(Relaxed),
                    )
                }
            };
            Response::Stats(StatsReport {
                filter_kind: geom.kind.clone(),
                filter_len,
                filter_bytes,
                inserts: s.inserts,
                queries: s.queries,
                deletes: s.deletes,
                filter_negatives: s.filter_negatives,
                false_positives: s.false_positives,
                adapts: s.adapts,
                connections: shared.connections.load(Relaxed),
                requests: shared.requests.load(Relaxed),
                capacity,
                load_factor_ppm,
                grows,
            })
        }
        Request::Snapshot => {
            let result = match &shared.db {
                Db::Global(m) => Shared::lock_global(m).snapshot(),
                Db::Shared { db, write_gate, .. } => {
                    let _g = Shared::gate(write_gate);
                    let mut d = Shared::write(db);
                    let got = d.snapshot();
                    shared.geom.refresh(&d);
                    got
                }
            };
            match result {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error {
                    code: ErrorCode::Snapshot,
                    message: e.to_string(),
                },
            }
        }
        Request::Shutdown => {
            writer
                .write_all(&Response::Ok.encode())
                .map_err(ProtoError::Io)?;
            return Ok(Flow::Shutdown);
        }
    };
    writer.write_all(&resp.encode()).map_err(ProtoError::Io)?;
    Ok(Flow::Continue)
}

// ----------------------------------------------------------------------
// Poll-style connection multiplexer (std-only)
// ----------------------------------------------------------------------

/// One multiplexed connection: a non-blocking socket, its frame reader
/// (which preserves partial buffered progress across `WouldBlock`), and
/// a pending-output buffer for responses the socket wasn't ready to
/// take.
struct MuxConn {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
    outbox: Vec<u8>,
    outpos: usize,
    dead: bool,
}

impl MuxConn {
    fn new(stream: TcpStream) -> std::io::Result<MuxConn> {
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        let reader = FrameReader::new(stream.try_clone()?);
        Ok(MuxConn {
            stream,
            reader,
            outbox: Vec::new(),
            outpos: 0,
            dead: false,
        })
    }

    /// Push buffered response bytes into the socket without blocking.
    /// Returns true if any bytes moved.
    fn flush_some(&mut self) -> bool {
        let mut progressed = false;
        while self.outpos < self.outbox.len() {
            match self.stream.write(&self.outbox[self.outpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.outpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.outpos == self.outbox.len() && self.outpos > 0 {
            self.outbox.clear();
            self.outpos = 0;
        }
        progressed
    }
}

/// Multiplexer poller: owns a set of non-blocking connections and scans
/// them for readiness. Idle scans back off exponentially (up to ~2 ms),
/// so thousands of idle connections cost near-zero CPU; any progress
/// resets the backoff. A true `poll(2)` would avoid the scan entirely,
/// but no such binding exists in this std-only environment, and the
/// bounded backoff keeps the idle cost flat in connection count.
fn poller_loop(shared: Arc<Shared>, addr: SocketAddr, idx: usize) {
    let mut conns: Vec<MuxConn> = Vec::new();
    let mut backoff_us: u64 = 0;
    let mut want_shutdown = false;
    loop {
        // Adopt newly accepted connections.
        {
            let mut inbox = shared.mux_inboxes[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for s in inbox.drain(..) {
                if let Ok(c) = MuxConn::new(s) {
                    conns.push(c);
                }
            }
        }
        let mut progressed = false;
        for c in conns.iter_mut() {
            if c.dead {
                continue;
            }
            progressed |= c.flush_some();
            if c.dead || c.outpos < c.outbox.len() {
                // Don't grow the outbox while the peer isn't draining it.
                continue;
            }
            // Drain every frame the socket has ready right now.
            loop {
                match c.reader.read_frame() {
                    Ok(frame) => {
                        progressed = true;
                        shared.requests.fetch_add(1, Relaxed);
                        match handle_frame(&shared, &frame, &mut c.outbox) {
                            Ok(Flow::Continue) => {}
                            Ok(Flow::Shutdown) => {
                                want_shutdown = true;
                                break;
                            }
                            Err(_) => {
                                c.dead = true;
                                break;
                            }
                        }
                    }
                    Err(ProtoError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        break
                    }
                    Err(ProtoError::Closed) => {
                        c.dead = true;
                        break;
                    }
                    Err(e) => {
                        let resp = Response::Error {
                            code: ErrorCode::BadRequest,
                            message: e.to_string(),
                        };
                        c.outbox.extend_from_slice(&resp.encode());
                        c.flush_some();
                        c.dead = true;
                        break;
                    }
                }
            }
            progressed |= c.flush_some();
        }
        conns.retain(|c| !c.dead || c.outpos < c.outbox.len());
        conns.retain(|c| !c.dead);
        if want_shutdown {
            // Best-effort drain of pending responses, then stop serving.
            for c in conns.iter_mut() {
                c.flush_some();
            }
            request_shutdown(&shared, addr);
            return;
        }
        if shared.shutdown.load(Relaxed) {
            for c in conns.iter_mut() {
                c.flush_some();
            }
            return;
        }
        if progressed {
            backoff_us = 0;
        } else {
            backoff_us = (backoff_us.max(25) * 2).min(2_000);
            std::thread::sleep(Duration::from_micros(backoff_us));
        }
    }
}
