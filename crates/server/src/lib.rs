//! A TCP filter server and load-generation client over the
//! filter-fronted database (`aqf_storage::system::FilteredDb`).
//!
//! Three layers:
//!
//! - [`proto`] — the AQFP wire protocol: versioned, length-prefixed,
//!   murmur-checksummed frames with typed errors on every corruption
//!   mode (same validate-before-decode discipline as
//!   `aqf_bits::snapshot`),
//! - [`server`] — the `aqf-serverd` runtime: read/write-split database
//!   locking with a lock-free (seqlock) read path, per-worker sharded
//!   accept queues with work stealing, an optional poll-style connection
//!   multiplexer, per-connection burst coalescing into the database's
//!   batch entry points, and a drain-snapshot-exit lifecycle,
//! - [`client`] — the blocking client (with a send/recv split for
//!   pipelining) used by `aqf-loadgen`, the system tests, and the
//!   `fig13_server` benchmark; [`histogram`] carries its latency
//!   percentiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod histogram;
pub mod proto;
pub mod server;

pub use client::Client;
pub use histogram::Histogram;
pub use proto::{ErrorCode, ProtoError, Request, Response, StatsReport};
pub use server::{LockMode, Server, ServerConfig};
