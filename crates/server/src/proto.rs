//! The AQFP wire protocol: versioned, length-prefixed, checksummed binary
//! frames carrying filter-server requests and responses.
//!
//! Every frame — request or response — has the same envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "AQFP"
//! 4       2     version (LE; currently 2, accepted 1..=2)
//! 6       1     op tag
//! 7       1     flags
//! 8       4     payload length (LE; at most MAX_PAYLOAD)
//! 12      n     payload
//! 12+n    8     murmur64a checksum over bytes [0, 12+n) (LE)
//! ```
//!
//! **Version history.** v1 is the original op set. v2 (minor revision)
//! extends the `RESP_STATS` payload with filter capacity, load factor,
//! and grow count; every other payload is unchanged. Both ends accept
//! v1 frames — a v1 stats payload simply decodes with the new fields
//! zeroed — so old clients and servers interoperate with new ones.
//!
//! The discipline mirrors `aqf_bits::snapshot`: validate the cheap
//! structural fields first (magic, version, declared length *before*
//! allocating), then the checksum over the whole frame, and only then
//! decode the payload — so a corrupt frame can never be half-applied, and
//! every failure mode maps to a typed [`ProtoError`] instead of a panic.
//!
//! Payload encodings are fixed-width little-endian integers plus
//! length-prefixed byte strings; [`PayloadReader`] rejects truncated
//! reads *and* trailing garbage, so two ends that disagree about a
//! payload layout fail loudly.

use std::io::{self, Read};

/// Frame magic: "AQFP".
pub const MAGIC: [u8; 4] = *b"AQFP";
/// Protocol version encoded in every outgoing frame.
pub const VERSION: u16 = 2;
/// Oldest protocol version this build still accepts.
pub const MIN_VERSION: u16 = 1;
/// Frame header size (magic + version + op + flags + payload length).
pub const HEADER_LEN: usize = 12;
/// Trailing checksum size.
pub const CHECKSUM_LEN: usize = 8;
/// Upper bound on a declared payload length. A frame claiming more is
/// rejected *before* any allocation, so a corrupt length field cannot
/// drive the peer out of memory.
pub const MAX_PAYLOAD: u32 = 1 << 24;
/// Seed for the frame checksum (distinct from the snapshot codec's so a
/// snapshot file spliced onto a socket never checksums as a frame).
const CHECKSUM_SEED: u64 = 0x4151_4650_5746_524D; // "AQFPWFRM"

/// Request op tags (client -> server).
pub mod op {
    /// Insert one key/value pair.
    pub const INSERT: u8 = 0x01;
    /// Point query for one key.
    pub const QUERY: u8 = 0x02;
    /// Delete one key.
    pub const DELETE: u8 = 0x03;
    /// Report a suspected false positive; server re-queries (adapting).
    pub const ADAPT_REPORT: u8 = 0x04;
    /// Batched point queries.
    pub const QUERY_BATCH: u8 = 0x05;
    /// Batched inserts.
    pub const INSERT_BATCH: u8 = 0x06;
    /// Server + filter statistics.
    pub const STATS: u8 = 0x07;
    /// Force an atomic snapshot to disk.
    pub const SNAPSHOT: u8 = 0x08;
    /// Graceful shutdown: drain, snapshot (if configured), exit.
    pub const SHUTDOWN: u8 = 0x09;

    /// Response op tags (server -> client) share the tag space with the
    /// high bit set.
    pub const RESP_OK: u8 = 0x80;
    /// Query hit: payload carries the value.
    pub const RESP_VALUE: u8 = 0x81;
    /// Query miss.
    pub const RESP_NOT_FOUND: u8 = 0x82;
    /// Delete outcome (payload: removed flag).
    pub const RESP_DELETED: u8 = 0x83;
    /// Adapt-report outcome (payload: adapted flag).
    pub const RESP_ADAPTED: u8 = 0x84;
    /// Batched query results.
    pub const RESP_BATCH_VALUES: u8 = 0x85;
    /// Batched insert acknowledgement (payload: count).
    pub const RESP_BATCH_OK: u8 = 0x86;
    /// Statistics report.
    pub const RESP_STATS: u8 = 0x87;
    /// Typed remote failure (payload: code + message).
    pub const RESP_ERROR: u8 = 0xFF;
}

/// Response flag bit: the backing store was read while answering (i.e.
/// the filter did not reject the query outright). The Fig. 6 adversary
/// uses this as its disk-latency oracle.
pub const FLAG_STORE_ACCESSED: u8 = 0x01;

/// Remote error codes carried by `RESP_ERROR` frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The filter refused the operation (full, unsupported, ...).
    Filter = 1,
    /// Snapshot write/recovery failed.
    Snapshot = 2,
    /// Operation not supported by this filter kind.
    Unsupported = 3,
    /// Malformed or out-of-protocol request.
    BadRequest = 4,
    /// Server is draining; retry against a restarted instance.
    ShuttingDown = 5,
    /// Internal I/O or invariant failure.
    Internal = 6,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::Filter,
            2 => Self::Snapshot,
            3 => Self::Unsupported,
            4 => Self::BadRequest,
            5 => Self::ShuttingDown,
            6 => Self::Internal,
            _ => return None,
        })
    }
}

/// Everything that can go wrong on the wire, typed. Both ends surface
/// these instead of panicking; a connection that produced one is closed,
/// but the peer process (and its other connections) keep running.
#[derive(Debug)]
pub enum ProtoError {
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// First four bytes were not "AQFP".
    BadMagic([u8; 4]),
    /// Frame version this build does not speak (outside
    /// [`MIN_VERSION`]..=[`VERSION`]).
    UnsupportedVersion {
        /// Version found in the frame.
        found: u16,
        /// Newest version this build supports.
        supported: u16,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Length the frame declared.
        declared: u32,
        /// The enforced bound.
        max: u32,
    },
    /// Frame checksum did not match its contents.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// Structurally valid frame with an op tag this build does not know.
    UnknownOp(u8),
    /// Checksum-valid frame whose payload does not decode (wrong length,
    /// trailing garbage, out-of-range field).
    Corrupt(String),
    /// Peer closed the connection cleanly (at a frame boundary).
    Closed,
    /// Transport-level failure.
    Io(io::Error),
    /// The server answered with a typed error frame.
    Remote {
        /// Remote error class.
        code: ErrorCode,
        /// Remote description.
        message: String,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, got {available}")
            }
            Self::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            Self::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported protocol version {found} (supported: {MIN_VERSION}..={supported})"
                )
            }
            Self::Oversized { declared, max } => {
                write!(f, "declared payload length {declared} exceeds cap {max}")
            }
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Self::UnknownOp(op) => write!(f, "unknown op tag {op:#04x}"),
            Self::Corrupt(why) => write!(f, "corrupt payload: {why}"),
            Self::Closed => write!(f, "connection closed"),
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Remote { code, message } => {
                write!(f, "remote error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// `Result` alias for protocol operations.
pub type Result<T> = std::result::Result<T, ProtoError>;

/// Compute the trailing checksum for `header ++ payload` bytes.
pub fn frame_checksum(frame_without_checksum: &[u8]) -> u64 {
    aqf_bits::hash::murmur64a(frame_without_checksum, CHECKSUM_SEED)
}

/// Encode one frame: envelope around `payload` with the given op/flags,
/// stamped with the current [`VERSION`].
pub fn encode_frame(op_tag: u8, flags: u8, payload: &[u8]) -> Vec<u8> {
    encode_frame_versioned(VERSION, op_tag, flags, payload)
}

/// [`encode_frame`] stamping an explicit version — for peers that must
/// emit a legacy frame (compatibility tests, downgrade tooling). The
/// caller is responsible for encoding the payload in that version's
/// layout.
pub fn encode_frame_versioned(version: u16, op_tag: u8, flags: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD as u64,
        "payload over cap"
    );
    assert!(
        (MIN_VERSION..=VERSION).contains(&version),
        "frame version {version} out of supported range"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(op_tag);
    out.push(flags);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = frame_checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// A decoded frame envelope: version, op tag, flags, and owned payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version the frame was encoded with
    /// ([`MIN_VERSION`]..=[`VERSION`]) — version-gated payloads
    /// (`RESP_STATS`) branch on it during decode.
    pub version: u16,
    /// Op tag (see [`op`]).
    pub op_tag: u8,
    /// Flags byte (see [`FLAG_STORE_ACCESSED`]).
    pub flags: u8,
    /// Payload bytes (validated by checksum, not yet decoded).
    pub payload: Vec<u8>,
}

/// Validate the 12-byte header. Returns the frame version and the
/// declared payload length. Order matters: magic, version, then length —
/// so a peer speaking a different protocol fails on magic, not on a
/// nonsense length.
fn validate_header(h: &[u8; HEADER_LEN]) -> Result<(u16, u32)> {
    if h[0..4] != MAGIC {
        return Err(ProtoError::BadMagic([h[0], h[1], h[2], h[3]]));
    }
    let version = u16::from_le_bytes([h[4], h[5]]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ProtoError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized {
            declared: len,
            max: MAX_PAYLOAD,
        });
    }
    Ok((version, len))
}

/// Decode one complete frame from `buf`. Returns the frame and the
/// number of bytes consumed. `buf` may hold more than one frame.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize)> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated {
            needed: HEADER_LEN,
            available: buf.len(),
        });
    }
    let mut h = [0u8; HEADER_LEN];
    h.copy_from_slice(&buf[..HEADER_LEN]);
    let (version, payload_len) = validate_header(&h)?;
    let payload_len = payload_len as usize;
    let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
    if buf.len() < total {
        return Err(ProtoError::Truncated {
            needed: total,
            available: buf.len(),
        });
    }
    let body = &buf[..HEADER_LEN + payload_len];
    let stored = u64::from_le_bytes(buf[HEADER_LEN + payload_len..total].try_into().unwrap());
    let computed = frame_checksum(body);
    if stored != computed {
        return Err(ProtoError::ChecksumMismatch { stored, computed });
    }
    Ok((
        Frame {
            version,
            op_tag: h[6],
            flags: h[7],
            payload: body[HEADER_LEN..].to_vec(),
        },
        total,
    ))
}

/// Buffered frame reader over any byte stream.
///
/// [`FrameReader::read_frame`] blocks until a whole frame (or a protocol
/// error) arrives; [`FrameReader::buffered_frame`] decodes only from
/// bytes already buffered — the server uses it to coalesce a burst of
/// pipelined frames into one batched database operation without waiting
/// on the socket.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` that are valid (front-compacted lazily).
    start: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(4096),
            start: 0,
        }
    }

    /// The wrapped stream (e.g. to clone a `TcpStream` for writing).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// True if buffered bytes are pending (a partial or complete frame).
    pub fn has_buffered(&self) -> bool {
        self.start < self.buf.len()
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Decode a frame from already-buffered bytes only. `Ok(None)` means
    /// the buffer holds no complete frame (empty or mid-frame); protocol
    /// errors (bad magic, checksum, ...) surface as errors.
    pub fn buffered_frame(&mut self) -> Result<Option<Frame>> {
        match decode_frame(self.pending()) {
            Ok((frame, used)) => {
                self.start += used;
                Ok(Some(frame))
            }
            Err(ProtoError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Read one frame, blocking until it is complete. Clean EOF at a
    /// frame boundary is [`ProtoError::Closed`]; EOF mid-frame is
    /// [`ProtoError::Truncated`]. `io::ErrorKind::WouldBlock` /
    /// `TimedOut` pass through as `Io` so callers with read timeouts can
    /// poll shutdown flags between attempts (buffered partial bytes are
    /// kept — the retry resumes mid-frame).
    pub fn read_frame(&mut self) -> Result<Frame> {
        loop {
            if let Some(f) = self.buffered_frame()? {
                return Ok(f);
            }
            self.compact();
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Err(ProtoError::Closed)
                    } else {
                        Err(ProtoError::Truncated {
                            needed: HEADER_LEN.max(self.buf.len() + 1),
                            available: self.buf.len(),
                        })
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Payload codec: bound-checked little-endian primitives.
// ---------------------------------------------------------------------

/// Append-only payload encoder.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Fresh empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish and take the encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bound-checked payload decoder. Every read is validated against the
/// remaining length; [`PayloadReader::done`] rejects trailing garbage.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Corrupt(format!(
                "payload needs {n} more bytes at offset {}, has {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u32`-length-prefixed byte string. The declared length is
    /// validated against the remaining payload before any copy.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Assert the payload is fully consumed.
    pub fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Insert `key -> value`.
    Insert {
        /// Key to insert.
        key: u64,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Point query.
    Query {
        /// Key to look up.
        key: u64,
    },
    /// Delete a key.
    Delete {
        /// Key to delete.
        key: u64,
    },
    /// Client-observed false positive; server re-queries under the lock
    /// so adaptive filters repair the colliding fingerprint.
    AdaptReport {
        /// The offending key.
        key: u64,
    },
    /// Batched point queries (answers keep request order).
    QueryBatch {
        /// Keys to look up.
        keys: Vec<u64>,
    },
    /// Batched inserts.
    InsertBatch {
        /// Key/value pairs to insert.
        items: Vec<(u64, Vec<u8>)>,
    },
    /// Server + filter statistics.
    Stats,
    /// Force an atomic snapshot now.
    Snapshot,
    /// Drain and exit (final snapshot governed by server config).
    Shutdown,
}

impl Request {
    /// This request's op tag.
    pub fn op_tag(&self) -> u8 {
        match self {
            Self::Insert { .. } => op::INSERT,
            Self::Query { .. } => op::QUERY,
            Self::Delete { .. } => op::DELETE,
            Self::AdaptReport { .. } => op::ADAPT_REPORT,
            Self::QueryBatch { .. } => op::QUERY_BATCH,
            Self::InsertBatch { .. } => op::INSERT_BATCH,
            Self::Stats => op::STATS,
            Self::Snapshot => op::SNAPSHOT,
            Self::Shutdown => op::SHUTDOWN,
        }
    }

    /// Encode to a complete wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            Self::Insert { key, value } => {
                w.u64(*key).bytes(value);
            }
            Self::Query { key } | Self::Delete { key } | Self::AdaptReport { key } => {
                w.u64(*key);
            }
            Self::QueryBatch { keys } => {
                w.u32(keys.len() as u32);
                for &k in keys {
                    w.u64(k);
                }
            }
            Self::InsertBatch { items } => {
                w.u32(items.len() as u32);
                for (k, v) in items {
                    w.u64(*k).bytes(v);
                }
            }
            Self::Stats | Self::Snapshot | Self::Shutdown => {}
        }
        encode_frame(self.op_tag(), 0, &w.finish())
    }

    /// Decode from a validated frame.
    pub fn decode(frame: &Frame) -> Result<Self> {
        let mut r = PayloadReader::new(&frame.payload);
        let req = match frame.op_tag {
            op::INSERT => Self::Insert {
                key: r.u64()?,
                value: r.bytes()?,
            },
            op::QUERY => Self::Query { key: r.u64()? },
            op::DELETE => Self::Delete { key: r.u64()? },
            op::ADAPT_REPORT => Self::AdaptReport { key: r.u64()? },
            op::QUERY_BATCH => {
                let n = r.u32()? as usize;
                let mut keys = Vec::new();
                for _ in 0..n {
                    keys.push(r.u64()?);
                }
                Self::QueryBatch { keys }
            }
            op::INSERT_BATCH => {
                let n = r.u32()? as usize;
                let mut items = Vec::new();
                for _ in 0..n {
                    items.push((r.u64()?, r.bytes()?));
                }
                Self::InsertBatch { items }
            }
            op::STATS => Self::Stats,
            op::SNAPSHOT => Self::Snapshot,
            op::SHUTDOWN => Self::Shutdown,
            other => return Err(ProtoError::UnknownOp(other)),
        };
        r.done()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------

/// Server + filter statistics, as carried by a `RESP_STATS` frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Registry kind of the serving filter.
    pub filter_kind: String,
    /// Fingerprints resident in the filter.
    pub filter_len: u64,
    /// Filter size in bytes.
    pub filter_bytes: u64,
    /// Keys inserted (database counter).
    pub inserts: u64,
    /// Queries answered.
    pub queries: u64,
    /// Deletes processed.
    pub deletes: u64,
    /// Queries the filter rejected without disk access.
    pub filter_negatives: u64,
    /// Filter positives the database refuted.
    pub false_positives: u64,
    /// Adaptations performed.
    pub adapts: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Request frames served since startup.
    pub requests: u64,
    /// Filter slot capacity (v2 frames; 0 from v1 peers or capacity-free
    /// kinds).
    pub capacity: u64,
    /// Filter load factor in parts per million (v2 frames; u64 keeps the
    /// payload integer-only and `Eq`).
    pub load_factor_ppm: u64,
    /// Grow events the filter has performed (v2 frames).
    pub grows: u64,
}

impl StatsReport {
    /// The load factor as a fraction, back from parts per million.
    pub fn load_factor(&self) -> f64 {
        self.load_factor_ppm as f64 / 1e6
    }

    /// Encode a load factor into parts per million (saturating at 0).
    pub fn ppm(load_factor: f64) -> u64 {
        (load_factor.max(0.0) * 1e6).round() as u64
    }
}

/// A decoded server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Query hit.
    Value {
        /// Stored value.
        value: Vec<u8>,
        /// Whether the backing store was read (see [`FLAG_STORE_ACCESSED`]).
        store_accessed: bool,
    },
    /// Query miss.
    NotFound {
        /// Whether the backing store was read.
        store_accessed: bool,
    },
    /// Delete outcome.
    Deleted {
        /// True if the key was present.
        removed: bool,
    },
    /// Adapt-report outcome.
    Adapted {
        /// True if the re-query adapted the filter.
        adapted: bool,
    },
    /// Batched query results, in request order.
    BatchValues {
        /// `None` per missing key.
        values: Vec<Option<Vec<u8>>>,
    },
    /// Batched insert acknowledgement.
    BatchOk {
        /// Pairs inserted.
        inserted: u64,
    },
    /// Statistics report.
    Stats(StatsReport),
    /// Typed failure.
    Error {
        /// Error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// This response's op tag.
    pub fn op_tag(&self) -> u8 {
        match self {
            Self::Ok => op::RESP_OK,
            Self::Value { .. } => op::RESP_VALUE,
            Self::NotFound { .. } => op::RESP_NOT_FOUND,
            Self::Deleted { .. } => op::RESP_DELETED,
            Self::Adapted { .. } => op::RESP_ADAPTED,
            Self::BatchValues { .. } => op::RESP_BATCH_VALUES,
            Self::BatchOk { .. } => op::RESP_BATCH_OK,
            Self::Stats(_) => op::RESP_STATS,
            Self::Error { .. } => op::RESP_ERROR,
        }
    }

    /// Encode to a complete wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        let mut flags = 0u8;
        match self {
            Self::Ok => {}
            Self::Value {
                value,
                store_accessed,
            } => {
                flags |= if *store_accessed {
                    FLAG_STORE_ACCESSED
                } else {
                    0
                };
                w.bytes(value);
            }
            Self::NotFound { store_accessed } => {
                flags |= if *store_accessed {
                    FLAG_STORE_ACCESSED
                } else {
                    0
                };
            }
            Self::Deleted { removed } => {
                w.u8(*removed as u8);
            }
            Self::Adapted { adapted } => {
                w.u8(*adapted as u8);
            }
            Self::BatchValues { values } => {
                w.u32(values.len() as u32);
                for v in values {
                    match v {
                        Some(v) => {
                            w.u8(1).bytes(v);
                        }
                        None => {
                            w.u8(0);
                        }
                    }
                }
            }
            Self::BatchOk { inserted } => {
                w.u64(*inserted);
            }
            Self::Stats(s) => {
                w.bytes(s.filter_kind.as_bytes());
                w.u64(s.filter_len)
                    .u64(s.filter_bytes)
                    .u64(s.inserts)
                    .u64(s.queries)
                    .u64(s.deletes)
                    .u64(s.filter_negatives)
                    .u64(s.false_positives)
                    .u64(s.adapts)
                    .u64(s.connections)
                    .u64(s.requests)
                    // v2 tail: capacity / load factor / grows.
                    .u64(s.capacity)
                    .u64(s.load_factor_ppm)
                    .u64(s.grows);
            }
            Self::Error { code, message } => {
                w.u16(*code as u16).bytes(message.as_bytes());
            }
        }
        encode_frame(self.op_tag(), flags, &w.finish())
    }

    /// Decode from a validated frame.
    pub fn decode(frame: &Frame) -> Result<Self> {
        let mut r = PayloadReader::new(&frame.payload);
        let store_accessed = frame.flags & FLAG_STORE_ACCESSED != 0;
        let resp = match frame.op_tag {
            op::RESP_OK => Self::Ok,
            op::RESP_VALUE => Self::Value {
                value: r.bytes()?,
                store_accessed,
            },
            op::RESP_NOT_FOUND => Self::NotFound { store_accessed },
            op::RESP_DELETED => Self::Deleted {
                removed: r.u8()? != 0,
            },
            op::RESP_ADAPTED => Self::Adapted {
                adapted: r.u8()? != 0,
            },
            op::RESP_BATCH_VALUES => {
                let n = r.u32()? as usize;
                let mut values = Vec::new();
                for _ in 0..n {
                    values.push(if r.u8()? != 0 { Some(r.bytes()?) } else { None });
                }
                Self::BatchValues { values }
            }
            op::RESP_BATCH_OK => Self::BatchOk { inserted: r.u64()? },
            op::RESP_STATS => {
                let kind_bytes = r.bytes()?;
                let filter_kind = String::from_utf8(kind_bytes)
                    .map_err(|_| ProtoError::Corrupt("stats kind is not UTF-8".into()))?;
                let mut s = StatsReport {
                    filter_kind,
                    filter_len: r.u64()?,
                    filter_bytes: r.u64()?,
                    inserts: r.u64()?,
                    queries: r.u64()?,
                    deletes: r.u64()?,
                    filter_negatives: r.u64()?,
                    false_positives: r.u64()?,
                    adapts: r.u64()?,
                    connections: r.u64()?,
                    requests: r.u64()?,
                    ..StatsReport::default()
                };
                // v1 peers end the payload here; the capacity fields stay
                // zeroed (`done()` still rejects any trailing garbage).
                if frame.version >= 2 {
                    s.capacity = r.u64()?;
                    s.load_factor_ppm = r.u64()?;
                    s.grows = r.u64()?;
                }
                Self::Stats(s)
            }
            op::RESP_ERROR => {
                let code_raw = r.u16()?;
                let code = ErrorCode::from_u16(code_raw)
                    .ok_or_else(|| ProtoError::Corrupt(format!("unknown error code {code_raw}")))?;
                let msg = r.bytes()?;
                let message = String::from_utf8(msg)
                    .map_err(|_| ProtoError::Corrupt("error message is not UTF-8".into()))?;
                Self::Error { code, message }
            }
            other => return Err(ProtoError::UnknownOp(other)),
        };
        r.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let wire = req.encode();
        let (frame, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let wire = resp.encode();
        let (frame, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(Response::decode(&frame).unwrap(), resp);
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip_req(Request::Insert {
            key: 7,
            value: b"hello".to_vec(),
        });
        roundtrip_req(Request::Query { key: u64::MAX });
        roundtrip_req(Request::Delete { key: 0 });
        roundtrip_req(Request::AdaptReport { key: 12345 });
        roundtrip_req(Request::QueryBatch {
            keys: (0..100).collect(),
        });
        roundtrip_req(Request::InsertBatch {
            items: (0..50u64).map(|k| (k, vec![k as u8; 9])).collect(),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Snapshot);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn every_response_roundtrips() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Value {
            value: b"v".to_vec(),
            store_accessed: true,
        });
        roundtrip_resp(Response::Value {
            value: vec![],
            store_accessed: false,
        });
        roundtrip_resp(Response::NotFound {
            store_accessed: false,
        });
        roundtrip_resp(Response::Deleted { removed: true });
        roundtrip_resp(Response::Adapted { adapted: false });
        roundtrip_resp(Response::BatchValues {
            values: vec![Some(b"a".to_vec()), None, Some(vec![])],
        });
        roundtrip_resp(Response::BatchOk { inserted: 42 });
        roundtrip_resp(Response::Stats(StatsReport {
            filter_kind: "sharded-aqf".into(),
            filter_len: 1,
            filter_bytes: 2,
            inserts: 3,
            queries: 4,
            deletes: 5,
            filter_negatives: 6,
            false_positives: 7,
            adapts: 8,
            connections: 9,
            requests: 10,
            capacity: 1 << 20,
            load_factor_ppm: 812_500,
            grows: 2,
        }));
        roundtrip_resp(Response::Error {
            code: ErrorCode::Filter,
            message: "full".into(),
        });
    }

    /// A v1 peer's stats frame (kind + 10 counters, no capacity tail)
    /// must still decode, with the v2-only fields zeroed.
    #[test]
    fn v1_stats_frame_decodes_with_zeroed_capacity_fields() {
        let mut p = PayloadWriter::new();
        p.bytes(b"aqf");
        for v in 1..=10u64 {
            p.u64(v);
        }
        let wire = encode_frame_versioned(1, op::RESP_STATS, 0, &p.finish());
        let (frame, used) = decode_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(frame.version, 1);
        let Response::Stats(s) = Response::decode(&frame).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(s.filter_kind, "aqf");
        assert_eq!(s.filter_len, 1);
        assert_eq!(s.requests, 10);
        assert_eq!((s.capacity, s.load_factor_ppm, s.grows), (0, 0, 0));
    }

    /// The capacity tail is mandatory in v2 frames: a v2 stats payload
    /// that stops after the v1 fields is corrupt, not silently zeroed.
    #[test]
    fn v2_stats_frame_without_capacity_tail_is_corrupt() {
        let mut p = PayloadWriter::new();
        p.bytes(b"aqf");
        for v in 1..=10u64 {
            p.u64(v);
        }
        let wire = encode_frame_versioned(2, op::RESP_STATS, 0, &p.finish());
        let (frame, _) = decode_frame(&wire).unwrap();
        assert!(matches!(
            Response::decode(&frame),
            Err(ProtoError::Truncated { .. } | ProtoError::Corrupt(_))
        ));
    }

    /// v1 request frames (identical layout in both versions) decode fine;
    /// versions past [`VERSION`] are rejected at the envelope.
    #[test]
    fn version_range_enforced_at_envelope() {
        let mut p = PayloadWriter::new();
        p.u64(7);
        let v1_wire = encode_frame_versioned(1, op::QUERY, 0, &p.finish());
        let (frame, _) = decode_frame(&v1_wire).unwrap();
        assert_eq!(frame.version, 1);
        assert_eq!(Request::decode(&frame).unwrap(), Request::Query { key: 7 });

        // Hand-build a frame claiming a future version.
        let mut wire = Request::Query { key: 7 }.encode();
        wire[4] = (VERSION + 1) as u8;
        wire[5] = 0;
        let body_len = wire.len() - CHECKSUM_LEN;
        let sum = frame_checksum(&wire[..body_len]);
        wire[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_frame(&wire),
            Err(ProtoError::UnsupportedVersion { found, supported })
                if found == VERSION + 1 && supported == VERSION
        ));
    }

    #[test]
    fn reader_coalesces_back_to_back_frames() {
        let mut wire = Request::Query { key: 1 }.encode();
        wire.extend(Request::Query { key: 2 }.encode());
        wire.extend(
            Request::Insert {
                key: 3,
                value: b"x".to_vec(),
            }
            .encode(),
        );
        let mut r = FrameReader::new(&wire[..]);
        let mut got = Vec::new();
        loop {
            match r.read_frame() {
                Ok(f) => got.push(Request::decode(&f).unwrap()),
                Err(ProtoError::Closed) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[1], Request::Query { key: 2 });
    }

    #[test]
    fn trailing_garbage_in_payload_is_corrupt() {
        // A checksum-valid frame whose payload is one byte too long for
        // its op must fail decode, not silently ignore the tail.
        let mut payload = PayloadWriter::new();
        payload.u64(9).u8(0xEE);
        let wire = encode_frame(op::QUERY, 0, &payload.finish());
        let (frame, _) = decode_frame(&wire).unwrap();
        assert!(matches!(
            Request::decode(&frame),
            Err(ProtoError::Corrupt(_))
        ));
    }
}
