//! A fixed-footprint latency histogram (HDR-style): logarithmic major
//! buckets with linear sub-buckets, so relative error is bounded (~1/16)
//! across nanoseconds-to-seconds without storing samples.

/// Linear sub-buckets per power-of-two major bucket.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Major buckets: values up to 2^47 ns (~1.6 days) before clamping.
const MAJORS: usize = 48;

/// Latency histogram over `u64` nanosecond samples.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; MAJORS * SUB],
            total: 0,
            max: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let major = 63 - v.leading_zeros();
        let sub = (v >> (major - SUB_BITS)) as usize & (SUB - 1);
        let idx = ((major - SUB_BITS + 1) as usize) * SUB + sub;
        idx.min(MAJORS * SUB - 1)
    }

    /// Midpoint value represented by bucket `idx` (inverse of `index`).
    fn value(idx: usize) -> u64 {
        let (major, sub) = (idx / SUB, idx % SUB);
        if major == 0 {
            return sub as u64;
        }
        let shift = (major - 1) as u32;
        ((SUB + sub) as u64) << shift
    }

    /// Record one sample (nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in [0, 1], approximated to bucket
    /// resolution; exact for the maximum.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.max(), 100_000);
        for (q, want) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.percentile(q) as f64;
            assert!(
                (got - want).abs() / want < 0.08,
                "p{q}: got {got}, want ~{want}"
            );
        }
        assert_eq!(h.percentile(1.0), 100_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (mut a, mut b, mut c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..5000u64 {
            let x = v.wrapping_mul(0x9E3779B97F4A7C15) >> 40;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            c.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.999] {
            assert_eq!(a.percentile(q), c.percentile(q));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..(SUB as u64) {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0), SUB as u64 - 1);
        assert_eq!(h.percentile(1.0 / SUB as f64), 0);
    }
}
