//! Blocking client for the AQFP protocol.
//!
//! One [`Client`] wraps one TCP connection. The request methods are
//! strictly synchronous (send, then wait for the response); the
//! [`Client::send`] / [`Client::recv`] split lets load generators
//! pipeline many frames before collecting answers — which is what
//! triggers the server's burst-coalescing batch path.

use crate::proto::{Frame, FrameReader, ProtoError, Request, Response, Result, StatsReport};
use std::io::Write;
use std::net::TcpStream;

/// A connected protocol client.
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (anything `TcpStream::connect` accepts).
    pub fn connect<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true).ok();
        let writer = conn.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(conn),
            writer,
        })
    }

    /// Fire a request without waiting for its response (pipelining).
    /// Responses arrive in request order; collect them with [`Client::recv`].
    pub fn send(&mut self, req: &Request) -> Result<()> {
        self.writer.write_all(&req.encode()).map_err(ProtoError::Io)
    }

    /// Receive the next response frame, decoded.
    pub fn recv(&mut self) -> Result<Response> {
        let frame: Frame = self.reader.read_frame()?;
        Response::decode(&frame)
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        self.send(req)?;
        match self.recv()? {
            Response::Error { code, message } => Err(ProtoError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    /// Insert one key/value pair.
    pub fn insert(&mut self, key: u64, value: &[u8]) -> Result<()> {
        match self.call(&Request::Insert {
            key,
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Point query; `None` on a miss.
    pub fn query(&mut self, key: u64) -> Result<Option<Vec<u8>>> {
        Ok(self.query_observed(key)?.0)
    }

    /// Point query plus the server's store-accessed flag — the Fig. 6
    /// adversary's replacement for timing the disk.
    pub fn query_observed(&mut self, key: u64) -> Result<(Option<Vec<u8>>, bool)> {
        match self.call(&Request::Query { key })? {
            Response::Value {
                value,
                store_accessed,
            } => Ok((Some(value), store_accessed)),
            Response::NotFound { store_accessed } => Ok((None, store_accessed)),
            other => Err(unexpected(other)),
        }
    }

    /// Delete a key; `true` if it was present.
    pub fn delete(&mut self, key: u64) -> Result<bool> {
        match self.call(&Request::Delete { key })? {
            Response::Deleted { removed } => Ok(removed),
            other => Err(unexpected(other)),
        }
    }

    /// Report a suspected false positive; `true` if the server adapted.
    pub fn adapt_report(&mut self, key: u64) -> Result<bool> {
        match self.call(&Request::AdaptReport { key })? {
            Response::Adapted { adapted } => Ok(adapted),
            other => Err(unexpected(other)),
        }
    }

    /// Batched point queries (answers in request order).
    pub fn query_batch(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u8>>>> {
        match self.call(&Request::QueryBatch {
            keys: keys.to_vec(),
        })? {
            Response::BatchValues { values } => {
                if values.len() != keys.len() {
                    return Err(ProtoError::Corrupt(format!(
                        "batch answered {} of {} keys",
                        values.len(),
                        keys.len()
                    )));
                }
                Ok(values)
            }
            other => Err(unexpected(other)),
        }
    }

    /// Batched inserts.
    pub fn insert_batch(&mut self, items: &[(u64, Vec<u8>)]) -> Result<u64> {
        match self.call(&Request::InsertBatch {
            items: items.to_vec(),
        })? {
            Response::BatchOk { inserted } => Ok(inserted),
            other => Err(unexpected(other)),
        }
    }

    /// Server + filter statistics.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Force an atomic snapshot on the server.
    pub fn snapshot(&mut self) -> Result<()> {
        match self.call(&Request::Snapshot)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ProtoError {
    ProtoError::Corrupt(format!("unexpected response op {:#04x}", resp.op_tag()))
}
