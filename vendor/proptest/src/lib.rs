//! Offline vendored shim for the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so this provides a
//! compact property-testing harness with proptest's surface:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(...)]` and
//!   `arg in strategy` parameters),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`prop_oneof!`] (weighted and unweighted),
//! - the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   integer ranges, tuples, and [`prelude::any`],
//! - [`collection::vec`],
//! - [`test_runner::ProptestConfig`] and [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: inputs are generated from a
//! deterministic per-test RNG (seeded from the test's module path, so runs
//! are reproducible) and failing cases are reported but **not shrunk**.
//! For this workspace's model-based tests, reproducibility plus the case
//! index is enough to debug a failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration and failure plumbing for generated property tests.

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases generated per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (e.g. by a filter); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification carrying `reason`.
        pub fn fail(reason: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(reason.to_string())
        }

        /// An input rejection carrying `reason`.
        pub fn reject(reason: impl std::fmt::Display) -> Self {
            TestCaseError::Reject(reason.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Result type of a generated test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG for one property test, seeded from its full path.
    pub fn rng_for_test(path: &str) -> TestRng {
        // FNV-1a over the test path: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Box a strategy as a trait object (used by [`crate::prop_oneof!`]).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of boxed strategies (what [`crate::prop_oneof!`] builds).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms. Panics if empty or all-zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs a positive total weight"
            );
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.random_range(0..self.total_weight);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick within total weight")
        }
    }

    macro_rules! impl_strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_for_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A);
    impl_strategy_for_tuple!(A, B);
    impl_strategy_for_tuple!(A, B, C);
    impl_strategy_for_tuple!(A, B, C, D);
    impl_strategy_for_tuple!(A, B, C, D, E);
    impl_strategy_for_tuple!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy (see [`crate::prelude::any`]).
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_random {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_via_random!(
        bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f64, f32
    );

    /// Strategy returned by [`crate::prelude::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Construct (normally via [`crate::prelude::any`]).
        pub fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A length range for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::new()
    }
}

/// Assert a boolean property inside a `proptest!` body.
///
/// On failure, returns `Err(TestCaseError)` from the enclosing generated
/// closure (so the harness can report the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body (with optional context format).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body (with optional context format).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (both: `{:?}`)",
            format!($($fmt)*), l
        );
    }};
}

/// Build a (optionally weighted) union of strategies.
///
/// `prop_oneof![a, b, c]` picks uniformly; `prop_oneof![3 => a, 1 => b]`
/// picks proportionally to the weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests: each `arg in strategy` parameter is generated
/// per case, and the body runs once per case.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     // Normally written with a `#[test]` attribute, which passes
///     // through; omitted here so the doctest can invoke it directly.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        $vis fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' falsified at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, msg,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[derive(Clone, Debug, PartialEq)]
    enum Tag {
        Small(u64),
        Big(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 1u32..=3, z in 0usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!(z < 4, "z was {}", z);
        }

        #[test]
        fn tuples_and_vec(pairs in crate::collection::vec((0u64..100, any::<bool>()), 1..20) ) {
            prop_assert!(!pairs.is_empty());
            for (v, _b) in pairs {
                prop_assert!(v < 100);
            }
        }

        #[test]
        fn oneof_weighted_maps(t in prop_oneof![
            3 => (0u64..10).prop_map(Tag::Small),
            1 => (1_000u64..1_010).prop_map(Tag::Big),
        ]) {
            match t {
                Tag::Small(v) => prop_assert!(v < 10),
                Tag::Big(v) => prop_assert!((1_000..1_010).contains(&v)),
            }
        }

        #[test]
        fn question_mark_propagates(v in 0u64..100) {
            let checked: Result<u64, String> = Ok(v);
            let got = checked.map_err(TestCaseError::fail)?;
            prop_assert_eq!(got, v);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[test]
                pub fn always_fails(x in 0u64..5) {
                    prop_assert!(x > 100, "x is only {}", x);
                }
            }
        }
        let err = std::panic::catch_unwind(inner::always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("falsified"), "got: {msg}");
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_runner::rng_for_test("mod::x");
        let mut b = crate::test_runner::rng_for_test("mod::x");
        let sa = crate::collection::vec(0u64..1000, 5..10).generate(&mut a);
        let sb = crate::collection::vec(0u64..1000, 5..10).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
