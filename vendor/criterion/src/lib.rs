//! Offline vendored shim for the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so this provides a
//! small wall-clock harness with criterion's surface: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter` / `iter_batched`, [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timings (median,
//! mean, min over the sample set) print to stdout.
//!
//! It intentionally skips criterion's statistics, plotting, and baseline
//! comparison; the numbers are honest `std::time::Instant` measurements
//! suitable for relative comparisons within one run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost across routine invocations.
///
/// This shim always runs one routine invocation per setup (criterion's
/// `PerIteration` behavior) — correct for every batch size, if slower to
/// converge for tiny routines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (e.g. a pre-filled filter).
    LargeInput,
    /// Exactly one setup per routine invocation.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let n = self.default_sample_size;
        run_bench(&id.into(), n, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Define and immediately run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size.unwrap_or(10), f);
        self
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed routine.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Time `routine` repeatedly, recording one sample per invocation.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warmup.
        black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        target: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{id:<40} median {:>12} mean {:>12} min {:>12} ({} samples)",
        fmt_dur(median),
        fmt_dur(mean),
        fmt_dur(min),
        b.samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Generated group runner: calls each registered benchmark fn.
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `fn main()` running the given group(s), criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs harness-less bench binaries to
            // smoke-test them; honor the standard `--test` flag by doing
            // nothing so test runs stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny(&mut c);
        c.bench_function("top_level", |b| b.iter(|| black_box(2 * 2)));
    }
}
