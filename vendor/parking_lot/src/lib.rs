//! Offline vendored shim for the `parking_lot` API this workspace uses.
//!
//! The build environment has no crates.io access, so this wraps
//! `std::sync` primitives behind `parking_lot`'s poison-free signatures:
//! `lock()` / `read()` / `write()` return guards directly (a poisoned
//! std lock is recovered rather than propagated — the workspace treats a
//! panicked critical section as a test failure, not a reason to wedge
//! every other thread).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
