//! Offline vendored shim for the random-number API this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact subset of a `rand`-style API the workspace needs:
//!
//! - [`RngExt`]: `random::<T>()` and `random_range(range)` (the `rand 0.9`
//!   method names, hung off a single workspace-local trait),
//! - [`SeedableRng::seed_from_u64`],
//! - [`rngs::StdRng`]: a deterministic xoshiro256++ generator,
//! - [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Everything is deterministic given a seed, which is what the test suite
//! and benchmark harnesses rely on. Statistical quality comes from
//! xoshiro256++ (Blackman & Vigna), which comfortably passes the
//! workspace's distribution tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core random-value trait: the subset of `rand::Rng` this workspace uses.
///
/// Named `RngExt` throughout the workspace; object-safety is not required,
/// but `&mut R` with `R: RngExt + ?Sized` call sites are supported.
pub trait RngExt {
    /// Produce the next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of type `T`.
    ///
    /// Integers cover their whole domain, `bool` is a fair coin, and
    /// `f64`/`f32` are uniform in `[0, 1)`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngExt + ?Sized> RngExt for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngExt`].
pub trait Random: Sized {
    /// Sample one value.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    #[inline]
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    #[inline]
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Sample one value from the range. Panics if the range is empty.
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (no modulo bias).
#[inline]
fn uniform_below<R: RngExt + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Zone rejection: accept only the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + uniform_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, width + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, width) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, width + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded from a `u64` through SplitMix64, as the xoshiro authors
    /// recommend, so nearby seeds give unrelated streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngExt for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngExt;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffle the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(0usize..=3);
            assert!(w <= 3);
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        // Full-domain ranges must not overflow.
        let _ = r.random_range(0..u64::MAX);
        let _ = r.random_range(0..=u64::MAX);
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items should move something");
    }
}
