//! A tour of the filter registry: every filter in the workspace — the
//! AdaptiveQF, its sharded and yes/no variants, and all six baselines —
//! built from one `FilterSpec` and driven through one `DynFilter`
//! interface. Adding a filter to the registry makes it show up here, in
//! every benchmark's `--filter=` flag, and in `FilteredDb`, with no
//! dispatch code to touch.
//!
//! ```text
//! cargo run --release --example filter_registry
//! ```

use adaptiveqf::filters::registry::{self, FilterSpec};
use adaptiveqf::filters::Adaptivity;
use adaptiveqf::workloads::uniform_keys;

fn main() {
    let qbits = 14u32;
    let n = ((1u64 << qbits) as f64 * 0.9) as usize;
    let keys = uniform_keys(n, 7);
    let probes = uniform_keys(100_000, 901);

    println!(
        "{:<12} {:<11} {:>9} {:>10} {:>9}  summary",
        "kind", "adaptivity", "items", "KiB", "-lg(FPR)"
    );
    for kind in registry::kinds() {
        let mut f = FilterSpec::new(kind, qbits)
            .with_seed(11)
            .build()
            .expect("every registered kind builds");
        for &k in &keys {
            f.insert(k).expect("sized for 90% load");
        }
        // No false negatives, by construction.
        assert!(keys.iter().all(|&k| f.contains(k)), "{kind} lost a member");

        // Empirical FPR on fresh probes; adapting as we go, so adaptive
        // filters stop repeating what they've been told about.
        let mut fps = 0usize;
        for &p in &probes {
            if f.query_adapting(p) {
                fps += 1;
            }
        }
        let fpr = (fps as f64 / probes.len() as f64).max(1e-9);

        let adaptivity = match f.adaptivity() {
            Adaptivity::None => "none",
            Adaptivity::Weak => "weak",
            Adaptivity::Strong => "strong",
        };
        println!(
            "{:<12} {:<11} {:>9} {:>10.1} {:>9.2}  {}",
            kind,
            adaptivity,
            f.len(),
            f.size_in_bytes() as f64 / 1024.0,
            -fpr.log2(),
            registry::describe(kind).unwrap_or_default()
        );
    }

    println!("\nStrongly adaptive kinds never repeat a reported false positive;");
    println!("re-probing the same stream shows the difference:");
    for kind in ["qf", "aqf"] {
        let mut f = FilterSpec::new(kind, qbits).with_seed(11).build().unwrap();
        for &k in &keys {
            f.insert(k).unwrap();
        }
        let first: usize = probes.iter().filter(|&&p| f.query_adapting(p)).count();
        let second: usize = probes.iter().filter(|&&p| f.query_adapting(p)).count();
        println!("  {kind:<4} first pass {first:>4} false positives, second pass {second:>4}");
    }
}
