//! A filter-fronted on-disk database under adversarial queries — the
//! paper's headline system experiment (§6.4, Fig. 6) as a runnable demo.
//!
//! ```text
//! cargo run --release --example db_frontend [-- --filter=aqf,qf]
//! ```
//!
//! An attacker that can time queries learns which keys cause disk reads
//! and replays them. A non-adaptive filter lets the attacker tank the
//! system; the AdaptiveQF fixes each discovered false positive on first
//! use, so the attack arsenal goes stale immediately.
//!
//! Any filter registry kind works: the system consumes the `DynFilter`
//! trait, so `--filter=sharded-aqf,tqf,cf` compares those instead.

use adaptiveqf::filters::registry::{self, FilterSpec};
use adaptiveqf::storage::pager::IoPolicy;
use adaptiveqf::storage::system::{FilteredDb, RevMapMode};
use adaptiveqf::workloads::{uniform_keys, Adversary};
use std::time::Duration;

fn run(mut db: FilteredDb, keys: &[u64]) {
    let label = db.filter().name().to_string();
    for &k in keys {
        db.insert(k, &k.to_le_bytes()).unwrap().unwrap();
    }
    // Phase 1: the adversary probes random keys and watches latency.
    let mut adv = Adversary::new(0.05, 99); // will control 5% of traffic
    let mut rng = adaptiveqf::workloads::rng(1);
    use rand::RngExt;
    for _ in 0..20_000 {
        let k: u64 = rng.random();
        // The adversary times the query: any store access (even a page
        // cache hit) is distinguishably slower than a filter-negative.
        let before = db.stats().filter_negatives;
        let found = db.query(k).unwrap().is_some();
        adv.observe(k, db.stats().filter_negatives == before, found);
    }
    // Phase 2: measured traffic with the adversary mixed in.
    let probes: Vec<u64> = (0..50_000)
        .map(|_| adv.next_query(|r| r.random()))
        .collect();
    let start = std::time::Instant::now();
    for &k in &probes {
        let _ = db.query(k).unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    let st = db.stats();
    println!(
        "{label:>10}: {:>8.0} queries/s | adversary arsenal {} | false positives {} | disk reads {}",
        probes.len() as f64 / secs,
        adv.arsenal(),
        st.false_positives,
        db.io_stats().reads,
    );
}

fn main() {
    let n = 60_000usize;
    let keys = uniform_keys(n, 5);
    let dir = std::env::temp_dir().join(format!("aqf-demo-{}", std::process::id()));
    // Simulate a disk: 50us per page read, tiny cache.
    let policy = IoPolicy {
        read_delay: Some(Duration::from_micros(50)),
        write_delay: None,
        yield_io: false,
    };

    // Uniform filter selection, like the bench binaries.
    let kinds: Vec<String> = std::env::args()
        .find_map(|a| a.strip_prefix("--filter=").map(str::to_string))
        .unwrap_or_else(|| "aqf,qf".to_string())
        .split(',')
        .map(str::to_string)
        .collect();

    println!("system: {n} keys on disk, 50us/page-read, adversary = 5% of queries\n");
    for kind in &kinds {
        if registry::describe(kind).is_none() {
            eprintln!(
                "unknown filter kind {kind:?}; valid: {}",
                registry::kinds().join(", ")
            );
            std::process::exit(2);
        }
        let filter = FilterSpec::new(&**kind, 17).with_seed(3).build().unwrap();
        let db = FilteredDb::new(filter, &dir.join(kind), 64, policy, RevMapMode::Merged).unwrap();
        run(db, &keys);
    }

    println!("\nNon-adaptive filters keep paying the disk penalty for every replayed");
    println!("false positive; adaptive ones paid each once, during the adversary's scan.");
    let _ = std::fs::remove_dir_all(&dir);
}
