//! Quickstart: the AdaptiveQF in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the core loop every adaptive-filter deployment has: query the
//! filter, verify positives against the backing store, and report false
//! positives back so they never happen again.

use adaptiveqf::aqf::{AdaptiveQf, AqfConfig, QueryResult};
use std::collections::HashMap;

fn main() {
    // A filter with 2^21 slots and 9-bit remainders: ~0.2% false-positive
    // rate, ~1.6 bits of metadata + 9 bits of remainder per key.
    let mut filter = AdaptiveQf::new(AqfConfig::new(21, 9)).unwrap();

    // The "database": here just a hash map. The reverse map from minirun
    // coordinates to keys is what adaptation needs (paper §4.2).
    let mut database: HashMap<u64, String> = HashMap::new();
    let mut revmap: HashMap<(u64, u32), u64> = HashMap::new();

    // Insert a million keys.
    for key in 0..1_000_000u64 {
        let out = filter.insert(key).expect("sized for this many keys");
        revmap.insert((out.minirun_id, out.rank), key);
        database.insert(key, format!("value-{key}"));
    }
    println!(
        "inserted {} keys into {} bytes of filter ({:.2} bits/key)",
        filter.len(),
        filter.size_in_bytes(),
        filter.bits_per_item()
    );

    // Query a mix of present and absent keys; count the false positives
    // the database sees, then show that each one never repeats.
    let absent = 5_000_000u64..5_200_000u64;
    let mut first_pass_fps = 0u64;
    let mut fixed: Vec<u64> = Vec::new();
    for key in absent.clone() {
        if let QueryResult::Positive(hit) = filter.query(key) {
            // The filter said maybe; the database is consulted (this is
            // the expensive step adaptive filters minimize).
            if !database.contains_key(&key) {
                first_pass_fps += 1;
                // Tell the filter: extend the colliding fingerprint.
                let stored = revmap[&(hit.minirun_id, hit.rank)];
                filter.adapt(&hit, stored, key).unwrap();
                fixed.push(key);
            }
        }
    }
    println!(
        "first pass over {} absent keys: {} false positives (rate {:.5})",
        absent.clone().count(),
        first_pass_fps,
        first_pass_fps as f64 / absent.clone().count() as f64
    );

    // Second pass: every fixed false positive must now be negative.
    let mut repeats = 0;
    for &key in &fixed {
        while let QueryResult::Positive(hit) = filter.query(key) {
            repeats += 1;
            let stored = revmap[&(hit.minirun_id, hit.rank)];
            filter.adapt(&hit, stored, key).unwrap();
        }
    }
    println!(
        "second pass over the {} fixed keys: {repeats} repeats",
        fixed.len()
    );

    // And no true member was harmed:
    for key in (0..1_000_000u64).step_by(997) {
        assert!(filter.contains(key), "member {key} lost");
    }
    println!(
        "all members still present; adaptation used {} extension slots ({:.5} bits/key)",
        filter.stats().extension_slots,
        filter.stats().extension_slots as f64 * 13.0 / filter.len() as f64
    );
}
