//! Malicious-URL blocking with a dynamic yes/no-list filter (paper §2.4,
//! §4.3): block everything on the blocklist, *never* block the protected
//! allowlist (e.g. emergency or government pages), and keep both lists
//! updatable in place.
//!
//! ```text
//! cargo run --release --example url_blocklist
//! ```

use adaptiveqf::aqf::{YesNoFilter, YesNoResponse};
use adaptiveqf::workloads::datasets::{shalla_like_urls, url_key};

fn main() {
    // A synthetic Shalla-style blocklist plus an allowlist of important
    // pages that must never be blocked, not even by a false positive.
    let (blocklist, benign) = shalla_like_urls(200_000, 50_000, 7);
    let allowlist: Vec<String> = benign[..1000].to_vec();

    let mut filter = YesNoFilter::new(19, 9).unwrap();
    for url in &blocklist {
        filter.insert_yes(url_key(url)).unwrap(); // yes = "block this"
    }
    for url in &allowlist {
        filter.insert_no(url_key(url)).unwrap(); // no = "never block"
    }
    println!(
        "{} blocked URLs + {} protected URLs in {} KiB",
        filter.yes_len(),
        filter.no_len(),
        filter.filter_size_in_bytes() / 1024
    );

    // Every blocklisted URL is blocked; every protected URL sails through.
    assert!(blocklist
        .iter()
        .all(|u| filter.query(url_key(u)) == YesNoResponse::Yes));
    assert!(allowlist
        .iter()
        .all(|u| filter.query(url_key(u)) != YesNoResponse::Yes));

    // Ordinary traffic: false positives are possible (and would trigger an
    // expensive verification step), but each is rare.
    let mut slow_path = 0;
    for url in &benign[1000..] {
        if filter.query(url_key(url)) == YesNoResponse::Yes {
            slow_path += 1;
        }
    }
    println!(
        "{} of {} ordinary URLs took the verification slow path ({:.4}%)",
        slow_path,
        benign.len() - 1000,
        100.0 * slow_path as f64 / (benign.len() - 1000) as f64
    );

    // Lists are dynamic: unblock a domain, protect another, on the fly.
    let unblocked = &blocklist[0];
    filter.remove(url_key(unblocked)).unwrap();
    assert!(filter.query(url_key(unblocked)) != YesNoResponse::Yes);
    let newly_protected = &benign[2000];
    filter.insert_no(url_key(newly_protected)).unwrap();
    assert_eq!(filter.query(url_key(newly_protected)), YesNoResponse::No);
    println!("dynamic updates OK: unblocked one URL, protected another");
}
