//! Counting mode: k-mer-style multiplicity counting (paper §4.2
//! "Counters"; the CQF heritage the AQF keeps).
//!
//! ```text
//! cargo run --release --example dedup_count
//! ```
//!
//! Streams a skewed sequence of items through `insert_counting`, which
//! stores one fingerprint per distinct item plus a variable-length counter
//! in extra slots — singletons pay nothing extra, heavy hitters pay
//! O(log count / r) slots.

use adaptiveqf::aqf::{AdaptiveQf, AqfConfig};
use adaptiveqf::workloads::ZipfGenerator;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let mut filter = AdaptiveQf::new(AqfConfig::new(16, 9).with_seed(11)).unwrap();
    let mut exact: HashMap<u64, u64> = HashMap::new();

    // A Zipfian stream: a few items occur thousands of times, most once.
    let z = ZipfGenerator::new(40_000, 1.3, 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    for _ in 0..500_000 {
        let item = z.sample_key(&mut rng);
        filter.insert_counting(item).unwrap();
        *exact.entry(item).or_insert(0) += 1;
    }

    println!(
        "stream of 500K items: {} distinct fingerprints, {} slots, {} bytes",
        filter.distinct_fingerprints(),
        filter.slots_in_use(),
        filter.size_in_bytes()
    );
    println!(
        "counter slots used: {} (heavy hitters only)",
        filter.stats().counter_slots
    );

    // Counts are never under-reported (collisions can only merge upward).
    let mut checked = 0;
    let mut exact_matches = 0;
    for (&item, &count) in exact.iter().take(10_000) {
        let got = filter.count(item);
        assert!(got >= count, "undercount for {item}: {got} < {count}");
        if got == count {
            exact_matches += 1;
        }
        checked += 1;
    }
    println!("{exact_matches}/{checked} spot-checked counts exact (rest merged by rare fingerprint collisions)");

    // Top-5 heavy hitters agree.
    let mut top: Vec<(u64, u64)> = exact.iter().map(|(&k, &v)| (k, v)).collect();
    top.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
    println!("\ntop-5 heavy hitters (exact vs filter):");
    for &(item, count) in top.iter().take(5) {
        println!(
            "  item {item:>20}  exact {count:>6}  filter {:>6}",
            filter.count(item)
        );
    }
}
