//! # adaptiveqf — Adaptive Quotient Filters (SIGMOD 2024) in Rust
//!
//! A facade crate re-exporting the whole workspace:
//!
//! - [`aqf`] — the AdaptiveQF itself: a counting quotient filter that
//!   *adapts* to reported false positives by extending fingerprints, with
//!   strong (monotone) adaptivity guarantees.
//! - [`filters`] — baseline filters from the paper's evaluation: quotient
//!   filter, cuckoo filter, adaptive cuckoo filter, telescoping quotient
//!   filter, Bloom and cascading Bloom filters.
//! - [`storage`] — an on-disk B+tree key-value store with a page cache, the
//!   reverse-map setups (merged / split), and the composed
//!   filter-fronted-database system the paper benchmarks.
//! - [`workloads`] — Zipfian / uniform / adversarial query generators and
//!   synthetic CAIDA-like and Shalla-like datasets.
//! - [`bits`] — bit-packed slot vectors, rank/select, and hashing.
//!
//! ## Quickstart
//!
//! ```
//! use adaptiveqf::aqf::{AdaptiveQf, AqfConfig, QueryResult};
//!
//! // 2^10 slots, 9 remainder bits => ~0.2% false-positive rate.
//! let mut filter = AdaptiveQf::new(AqfConfig::new(10, 9)).unwrap();
//! filter.insert(42).unwrap();
//!
//! assert!(matches!(filter.query(42), QueryResult::Positive(_)));
//!
//! // Suppose key 7 queried positive but the database said "not present":
//! // tell the filter, and it will never repeat that false positive.
//! if let QueryResult::Positive(hit) = filter.query(7) {
//!     filter.adapt(&hit, 42, 7).unwrap();
//!     assert!(matches!(filter.query(7), QueryResult::Negative));
//!     assert!(matches!(filter.query(42), QueryResult::Positive(_)));
//! }
//! ```

pub use aqf;
pub use aqf_bits as bits;
pub use aqf_filters as filters;
pub use aqf_storage as storage;
pub use aqf_workloads as workloads;
