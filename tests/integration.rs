//! Cross-crate integration tests: filter + workloads + storage working as
//! the paper's deployed system.

use adaptiveqf::aqf::{AdaptiveQf, AqfConfig, QueryResult, StaticYesNo};
use adaptiveqf::filters::registry::{self, FilterSpec};
use adaptiveqf::filters::{AmqFilter, CascadingBloomFilter, DynFilter, QuotientFilter};
use adaptiveqf::storage::pager::IoPolicy;
use adaptiveqf::storage::system::{FilteredDb, RevMapMode};
use adaptiveqf::workloads::{uniform_keys, Adversary, ZipfGenerator};
use rand::RngExt;

fn tmp(tag: &str) -> std::path::PathBuf {
    adaptiveqf::workloads::unique_temp_dir(&format!("aqf-it-{tag}"))
}

/// The headline guarantee, end to end: on a Zipfian stream, the system's
/// observed false-positive *count* stays far below a non-adaptive
/// filter's, because repeats are free.
#[test]
fn zipfian_stream_false_positive_advantage() {
    let n = 9_000usize;
    let keys = uniform_keys(n, 42);
    let dir = tmp("zipf");

    let mut aqf_db = FilteredDb::with_aqf(
        AqfConfig::new(14, 7).with_seed(1),
        &dir.join("aqf"),
        512,
        IoPolicy::default(),
    )
    .unwrap();
    let qf = FilterSpec::new("qf", 14).with_rbits(7).with_seed(1);
    let mut qf_db = FilteredDb::new(
        qf.build().unwrap(),
        &dir.join("qf"),
        512,
        IoPolicy::default(),
        RevMapMode::Merged,
    )
    .unwrap();

    for &k in &keys {
        aqf_db.insert(k, b"v").unwrap().unwrap();
        qf_db.insert(k, b"v").unwrap().unwrap();
    }

    // Skewed queries over a universe disjoint from the members. Sample
    // the Zipfian stream once and replay it for several epochs — exactly
    // the hot-loop pattern the paper targets: the QF pays for a false
    // positive on every recurrence, the AQF only on first sight.
    let z = ZipfGenerator::new(50_000, 1.5, 9);
    let mut rng = adaptiveqf::workloads::rng(3);
    let stream: Vec<u64> = (0..20_000)
        .map(|_| z.sample_key(&mut rng) | (1 << 63)) // disjoint from members w.h.p.
        .collect();
    for _epoch in 0..8 {
        for &q in &stream {
            let a = aqf_db.query(q).unwrap();
            let b = qf_db.query(q).unwrap();
            assert!(a.is_none() && b.is_none());
        }
    }
    let aqf_fps = aqf_db.stats().false_positives;
    let qf_fps = qf_db.stats().false_positives;
    // The QF pays once per repeat; the AQF once per distinct FP. On a
    // hot-loop Zipfian workload that is a large factor.
    assert!(
        aqf_fps * 5 < qf_fps.max(1),
        "AQF fps {aqf_fps} should be far below QF fps {qf_fps}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Adversarial replay cannot hurt the adaptive system (Fig. 6 in miniature).
#[test]
fn adversary_is_neutralized() {
    let dir = tmp("adv");
    let mut db = FilteredDb::with_aqf(
        AqfConfig::new(13, 6).with_seed(7),
        &dir,
        256,
        IoPolicy::default(),
    )
    .unwrap();
    for &k in &uniform_keys(6000, 5) {
        db.insert(k, b"v").unwrap().unwrap();
    }
    let mut adv = Adversary::new(1.0, 2);
    let mut rng = adaptiveqf::workloads::rng(8);
    for _ in 0..30_000 {
        let k: u64 = rng.random();
        // The adversary times the query: any store access (even a page
        // cache hit) is distinguishably slower than a filter-negative.
        let before = db.stats().filter_negatives;
        let found = db.query(k).unwrap().is_some();
        adv.observe(k, db.stats().filter_negatives == before, found);
    }
    assert!(adv.arsenal() > 0, "warmup should find false positives");
    // Replay the whole arsenal: zero new false positives.
    let before = db.stats().false_positives;
    for _ in 0..adv.arsenal() * 3 {
        let k = adv.next_query(|_| unreachable!("frequency 1.0"));
        assert!(db.query(k).unwrap().is_none());
    }
    assert_eq!(db.stats().false_positives, before, "arsenal must be stale");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Static yes/no AQF and CRLite-style cascading Bloom agree on guarantees;
/// compare space like Fig. 9.
#[test]
fn yesno_both_solutions_correct() {
    let yes: Vec<u64> = uniform_keys(4000, 11);
    let no: Vec<u64> = uniform_keys(4000, 12);
    let cfg = AqfConfig::for_capacity(4000, 0.85, 4).with_seed(2);
    let aqf = StaticYesNo::build(cfg, &yes, &no).unwrap();
    let cbf = CascadingBloomFilter::build(&yes, &no, 3).unwrap();
    for &y in &yes {
        assert!(aqf.query(y) && cbf.query(y));
    }
    for &z in &no {
        assert!(!aqf.query(z) && !cbf.query(z));
    }
    // Both stay within sane space bounds (no blowup).
    assert!(aqf.size_in_bytes() < 64 * 4000);
    assert!(cbf.size_in_bytes() < 64 * 4000);
}

/// Merging two system-backed filters keeps all keys queryable (Table 5's
/// correctness side).
#[test]
fn merge_then_query_members() {
    let cfg = AqfConfig::new(12, 8).with_seed(4);
    let mut a = AdaptiveQf::new(cfg).unwrap();
    let mut b = AdaptiveQf::new(cfg).unwrap();
    let ka = uniform_keys(3000, 21);
    let kb = uniform_keys(3000, 22);
    for &k in &ka {
        a.insert(k).unwrap();
    }
    for &k in &kb {
        b.insert(k).unwrap();
    }
    let merged = a.merge(&b).unwrap();
    merged.assert_valid();
    for &k in ka.iter().chain(kb.iter()) {
        assert!(merged.contains(k));
    }
    // And the merged filter keeps adapting.
    let mut m = merged;
    let mut probe = u64::MAX / 2;
    let mut fixed = 0;
    while fixed < 5 {
        probe -= 1;
        if let QueryResult::Positive(hit) = m.query(probe) {
            // Locate some member generating this minirun for the reverse
            // map role.
            let stored = ka
                .iter()
                .chain(kb.iter())
                .copied()
                .find(|&k| m.fingerprint(k).minirun_id() == hit.minirun_id);
            if let Some(s) = stored {
                if m.adapt(&hit, s, probe).is_ok() {
                    fixed += 1;
                }
            } else {
                break;
            }
        }
    }
    m.assert_valid();
}

/// Both trait-object layers work for generic call sites: `dyn AmqFilter`
/// over concrete filters, and `dyn DynFilter` over the whole registry —
/// including the AdaptiveQF family that used to need bespoke enums.
#[test]
fn trait_object_usage() {
    let mut filters: Vec<Box<dyn AmqFilter>> = vec![
        Box::new(QuotientFilter::new(10, 8, 1).unwrap()),
        Box::new(adaptiveqf::filters::CuckooFilter::new(8, 12, 1).unwrap()),
        Box::new(adaptiveqf::filters::BloomFilter::for_capacity(900, 0.01, 1).unwrap()),
        Box::new(AdaptiveQf::new(AqfConfig::new(10, 8).with_seed(1)).unwrap()),
    ];
    for f in &mut filters {
        for k in 0..900u64 {
            f.insert(k).unwrap();
        }
        for k in 0..900u64 {
            assert!(f.contains(k), "{} lost {k}", f.name());
        }
    }

    let mut dyns: Vec<Box<dyn DynFilter>> = registry::kinds()
        .into_iter()
        .map(|kind| FilterSpec::new(kind, 10).build().unwrap())
        .collect();
    for f in &mut dyns {
        for k in 0..900u64 {
            f.insert(k).unwrap();
        }
        for k in 0..900u64 {
            assert!(f.contains(k), "{} lost {k}", f.kind());
        }
    }
}
